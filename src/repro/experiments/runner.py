"""Experiment runner: one (implementation, problem) -> one metric record.

Combines the performance model (:mod:`repro.perf`) and the energy model
(:mod:`repro.energy`) into the flat :class:`Metrics` record every figure
and table builder consumes.  Results are memoised per runner instance —
the figures share most of their grid points.  The cache key covers
*everything* that determines the answer (implementation, spec, tiling,
calibration, device), so mutating ``runner.cal`` or ``runner.tiling``
between calls can never hand back a stale record.

On top of the in-process memo sits the optional *persistent* layer: give
the runner a :class:`repro.store.ResultStore` (or let :func:`repro.store.
default_store` pick one up from ``$REPRO_CACHE_DIR``) and every computed
record is written through to disk under a full-configuration content
digest, so a second CLI invocation, CI job, or figure bench on the same
machine replays the grid from cache instead of recomputing it.  Runs
under an armed fault-injection context bypass the persistent layer in
both directions — an injected run is neither served clean results nor
allowed to poison them.

:meth:`ExperimentRunner.run_with_retry` is the resilient entry point the
sweep harness builds on: transient failures are retried with exponential
backoff, and every attempt is held to a wall-clock budget.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from ..core.digest import config_digest
from ..core.problem import ProblemSpec
from ..core.tiling import PAPER_TILING, TilingConfig
from ..energy.model import EnergyBreakdown, EnergyModel
from ..errors import ExperimentTimeoutError, TransientModelError
from ..faults.injector import active_injector
from ..gpu.device import GTX970, DeviceSpec
from ..obs.log import get_logger, log_event
from ..obs.metrics import counter_inc
from ..obs.tracer import span
from ..perf.calibration import Calibration, DEFAULT_CALIBRATION
from ..perf.pipeline import model_gemm, model_run

__all__ = ["Metrics", "ExperimentRunner", "METRICS_KIND"]

#: record-schema namespace of persisted metric records
METRICS_KIND = "experiment.metrics/v1"

_log = get_logger("experiments.runner")


@dataclass(frozen=True)
class Metrics:
    """Everything the paper reports about one run."""

    implementation: str
    spec: ProblemSpec
    seconds: float
    flop_efficiency: float
    l2_transactions: float
    dram_transactions: float
    l2_mpki: float
    energy: EnergyBreakdown

    @property
    def total_energy(self) -> float:
        return self.energy.total


def _metrics_payload(m: Metrics) -> dict:
    """JSON-exact record body (floats round-trip bit-identically)."""
    e = m.energy
    # float() unwraps any numpy scalar; float64 -> JSON -> float64 is exact
    return {
        "kind": METRICS_KIND,
        "implementation": m.implementation,
        "seconds": float(m.seconds),
        "flop_efficiency": float(m.flop_efficiency),
        "l2_transactions": float(m.l2_transactions),
        "dram_transactions": float(m.dram_transactions),
        "l2_mpki": float(m.l2_mpki),
        "energy": {
            "compute": float(e.compute), "smem": float(e.smem), "l2": float(e.l2),
            "dram": float(e.dram), "static": float(e.static),
        },
    }


def _metrics_from_payload(implementation: str, spec: ProblemSpec, payload: dict) -> Metrics:
    return Metrics(
        implementation=implementation,
        spec=spec,
        seconds=float(payload["seconds"]),
        flop_efficiency=float(payload["flop_efficiency"]),
        l2_transactions=float(payload["l2_transactions"]),
        dram_transactions=float(payload["dram_transactions"]),
        l2_mpki=float(payload["l2_mpki"]),
        energy=EnergyBreakdown(**{k: float(v) for k, v in payload["energy"].items()}),
    )


class ExperimentRunner:
    """Runs and caches modelled experiments on one device.

    ``store`` adds the persistent layer: a :class:`repro.store.ResultStore`
    instance or a cache-directory path.  ``store=None`` (the default)
    keeps the runner purely in-memory.
    """

    def __init__(
        self,
        device: DeviceSpec = GTX970,
        tiling: TilingConfig = PAPER_TILING,
        cal: Calibration = DEFAULT_CALIBRATION,
        store: Union["ResultStore", str, None] = None,
    ) -> None:
        self.device = device
        self.tiling = tiling
        self.cal = cal
        self.energy_model = EnergyModel(device)
        if store is not None and not hasattr(store, "get"):
            from ..store import ResultStore

            store = ResultStore(store)
        self.store = store
        self._cache: Dict[
            Tuple[str, ProblemSpec, TilingConfig, Calibration, DeviceSpec], Metrics
        ] = {}

    def _key(self, implementation: str, spec: ProblemSpec):
        # the full configuration, not just (implementation, spec): a runner
        # whose tiling/cal/device is swapped must recompute, not replay
        return (implementation, spec, self.tiling, self.cal, self.device)

    def digest(self, implementation: str, spec: ProblemSpec) -> str:
        """Content address of one metric record in the persistent store."""
        return config_digest(
            {
                "kind": METRICS_KIND,
                "implementation": implementation,
                "spec": spec,
                "tiling": self.tiling,
                "cal": self.cal,
                "device": self.device,
            }
        )

    def _store_get(self, implementation: str, spec: ProblemSpec) -> Optional[Metrics]:
        if self.store is None or active_injector() is not None:
            return None
        cached = self.store.get(self.digest(implementation, spec))
        if cached is None:
            return None
        payload, _ = cached
        if payload.get("kind") != METRICS_KIND:
            return None
        return _metrics_from_payload(implementation, spec, payload)

    def _store_put(self, implementation: str, spec: ProblemSpec, metrics: Metrics) -> None:
        # never persist anything computed under an armed fault injector:
        # the clean cache must only ever hold clean results
        if self.store is None or active_injector() is not None:
            return
        self.store.put(self.digest(implementation, spec), _metrics_payload(metrics))

    def run(self, implementation: str, spec: ProblemSpec) -> Metrics:
        """Model one implementation on one problem (cached)."""
        key = self._key(implementation, spec)
        if key not in self._cache:
            persisted = self._store_get(implementation, spec)
            if persisted is not None:
                counter_inc("experiments.cache.store_hits")
                self._cache[key] = persisted
                return persisted
            counter_inc("experiments.cache.misses")
            with span(
                "experiment.run",
                implementation=implementation,
                M=spec.M, N=spec.N, K=spec.K,
            ):
                prof = model_run(implementation, spec, self.tiling, self.device, self.cal)
                if self.energy_model.device is not self.device:
                    self.energy_model = EnergyModel(self.device)
                self._cache[key] = Metrics(
                    implementation=implementation,
                    spec=spec,
                    seconds=prof.total_seconds,
                    flop_efficiency=prof.flop_efficiency(),
                    l2_transactions=prof.l2_transactions,
                    dram_transactions=prof.dram_transactions,
                    l2_mpki=prof.l2_mpki(),
                    energy=self.energy_model.breakdown(prof),
                )
            self._store_put(implementation, spec, self._cache[key])
        else:
            counter_inc("experiments.cache.hits")
        return self._cache[key]

    def run_with_retry(
        self,
        implementation: str,
        spec: ProblemSpec,
        max_retries: int = 3,
        backoff_s: float = 0.05,
        timeout_s: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Metrics:
        """:meth:`run`, hardened for long unattended campaigns.

        Retries :class:`~repro.errors.TransientModelError` up to
        ``max_retries`` times with exponential backoff (``backoff_s``,
        doubling per attempt); any attempt whose wall-clock time exceeds
        ``timeout_s`` raises :class:`~repro.errors.ExperimentTimeoutError`.
        ``sleep`` is injectable so tests don't actually wait.
        """
        attempt = 0
        while True:
            t0 = time.perf_counter()
            try:
                result = self.run(implementation, spec)
            except TransientModelError as exc:
                if attempt >= max_retries:
                    raise
                counter_inc("experiments.retries")
                log_event(
                    _log, logging.INFO, "retry",
                    implementation=implementation,
                    M=spec.M, N=spec.N, K=spec.K,
                    attempt=attempt + 1,
                    max_retries=max_retries,
                    error=type(exc).__name__,
                )
                sleep(backoff_s * (2.0 ** attempt))
                attempt += 1
                continue
            elapsed = time.perf_counter() - t0
            if timeout_s is not None and elapsed > timeout_s:
                raise ExperimentTimeoutError(
                    f"{implementation} on M={spec.M} N={spec.N} K={spec.K} took "
                    f"{elapsed:.3f}s (budget {timeout_s:.3f}s)"
                )
            return result

    def gemm_seconds(self, flavor: str, spec: ProblemSpec) -> float:
        """Standalone-GEMM runtime (Fig. 7)."""
        return model_gemm(flavor, spec, self.tiling, self.device, self.cal).total_seconds

    def speedup(self, spec: ProblemSpec, of: str = "fused", vs: str = "cublas-unfused") -> float:
        """Runtime ratio vs/of (>1 means ``of`` wins)."""
        return self.run(vs, spec).seconds / self.run(of, spec).seconds
