"""The calibration procedure, as code.

DESIGN.md states the model was calibrated against a handful of the paper's
published numbers and validated against the rest.  This module makes that
step reproducible: :func:`fit_energy_constants` re-derives the two compute-
energy scalars from exactly two Table III cells (the same anchor cells used
originally), and :func:`fit_dram_efficiency` recovers the DRAM streaming
efficiency from the K=32 speedup.  Tests assert the fits land on the
shipped defaults — so the defaults are provably *derived*, not hand-picked
to make every test pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.problem import ProblemSpec
from ..energy.mcpat import McPatParams, params_for_device
from ..energy.model import EnergyModel
from ..gpu.device import GTX970, DeviceSpec
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..perf.pipeline import model_run
from .paper_values import TABLE3_ENERGY_SAVINGS

__all__ = ["EnergyFit", "fit_energy_constants", "fit_dram_efficiency"]

#: the two Table III anchor cells used for the original calibration
ANCHOR_CELLS = ((32, 131072), (256, 131072))


@dataclass(frozen=True)
class EnergyFit:
    """Result of the energy-constant fit."""

    compute_scale: float
    params: McPatParams
    anchor_errors: dict

    def max_anchor_error(self) -> float:
        return max(abs(v) for v in self.anchor_errors.values())


def _savings_with(params: McPatParams, K: int, M: int, device: DeviceSpec) -> float:
    em = EnergyModel(device, params)
    spec = ProblemSpec(M=M, N=1024, K=K)
    fused = em.breakdown(model_run("fused", spec))
    cublas = em.breakdown(model_run("cublas-unfused", spec))
    return 100.0 * fused.savings_vs(cublas)


def fit_energy_constants(
    device: DeviceSpec = GTX970,
    lo: float = 0.5,
    hi: float = 8.0,
    iterations: int = 40,
) -> EnergyFit:
    """Fit the compute-energy scale to the two anchor cells.

    One scalar multiplies the FMA/SFU/instruction energies of the base
    parameter set; the anchors pin it because the K=32 cell is DRAM-
    dominated (insensitive to the scale) while the K=256 cell is compute-
    dominated (very sensitive).  Bisection on the mean signed anchor error
    converges in a few dozen steps.
    """
    base = params_for_device(device)

    def scaled(s: float) -> McPatParams:
        return base.with_(
            fma_energy=base.fma_energy * s,
            sfu_energy=base.sfu_energy * s,
            instruction_energy=base.instruction_energy * s,
        )

    def mean_error(s: float) -> float:
        err = 0.0
        for K, M in ANCHOR_CELLS:
            err += _savings_with(scaled(s), K, M, device) - TABLE3_ENERGY_SAVINGS[(K, M)]
        return err / len(ANCHOR_CELLS)

    # savings decrease as compute energy grows: mean_error is decreasing in s
    a, b = lo, hi
    if mean_error(a) < 0 or mean_error(b) > 0:
        raise RuntimeError("anchor errors do not bracket a root; model changed?")
    for _ in range(iterations):
        mid = 0.5 * (a + b)
        if mean_error(mid) > 0:
            a = mid
        else:
            b = mid
    s = 0.5 * (a + b)
    params = scaled(s)
    errors = {
        (K, M): _savings_with(params, K, M, device) - TABLE3_ENERGY_SAVINGS[(K, M)]
        for K, M in ANCHOR_CELLS
    }
    return EnergyFit(compute_scale=s, params=params, anchor_errors=errors)


def fit_dram_efficiency(
    target_speedup: float = 1.8,
    K: int = 32,
    M: int = 131072,
    lo: float = 0.5,
    hi: float = 0.95,
    iterations: int = 30,
    device: DeviceSpec = GTX970,
) -> float:
    """Recover the DRAM streaming efficiency from the headline speedup.

    The fused kernel at K=32 is compute-bound, so its time is independent
    of this knob; the baseline is DRAM-bound, so the speedup is monotone
    decreasing in the efficiency.  Bisect to the paper's 1.8x.
    """

    def speedup(eff: float) -> float:
        cal = DEFAULT_CALIBRATION.with_(dram_streaming_efficiency=eff)
        t_f = model_run("fused", ProblemSpec(M=M, N=1024, K=K), device=device, cal=cal).total_seconds
        t_c = model_run(
            "cublas-unfused", ProblemSpec(M=M, N=1024, K=K), device=device, cal=cal
        ).total_seconds
        return t_c / t_f

    a, b = lo, hi
    if speedup(a) < target_speedup or speedup(b) > target_speedup:
        raise RuntimeError("target speedup not bracketed; model changed?")
    for _ in range(iterations):
        mid = 0.5 * (a + b)
        if speedup(mid) > target_speedup:
            a = mid
        else:
            b = mid
    return 0.5 * (a + b)
