"""Plain-text rendering of reproduced figures and tables.

The benchmark harness prints through these helpers so `pytest benchmarks/
-s` regenerates, in rows, what the paper shows in bars.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .figures import FigureResult
from .tables import TableResult

__all__ = ["render_figure", "render_table", "format_row", "render_bars"]


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (the textual stand-in for the paper's bars).

    Bars are scaled to the maximum value; each row shows the label, the
    bar, and the numeric value.
    """
    labels = list(labels)
    vals = [float(v) for v in values]
    if len(labels) != len(vals):
        raise ValueError("labels and values must have equal length")
    if not vals:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in vals):
        raise ValueError("bar values must be non-negative")
    peak = max(vals) or 1.0
    label_w = max(len(s) for s in labels)
    lines = []
    for lab, v in zip(labels, vals):
        bar = "#" * max(1 if v > 0 else 0, round(v / peak * width))
        lines.append(f"{lab.rjust(label_w)} | {bar.ljust(width)} {v:.3f}{unit}")
    return "\n".join(lines)


def format_row(cells: Iterable, widths: Sequence[int]) -> str:
    """Fixed-width row formatting; floats get 3 significant decimals."""
    out = []
    for cell, w in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:.3f}"
        else:
            text = str(cell)
        out.append(text.rjust(w))
    return "  ".join(out)


def render_figure(result: FigureResult, max_rows: int | None = None) -> str:
    """Render a figure's series as an aligned text table."""
    names = list(result.series)
    header = ["config"] + names
    widths = [max(18, len(header[0]))] + [max(12, len(n)) for n in names]
    lines = [
        f"--- {result.figure}: {result.title} ---",
        f"paper: {result.paper_claim}",
        format_row(header, widths),
    ]
    n = len(result.x_labels) if max_rows is None else min(max_rows, len(result.x_labels))
    for i in range(n):
        row = [result.x_labels[i]] + [result.series[s][i] for s in names]
        lines.append(format_row(row, widths))
    if n < len(result.x_labels):
        lines.append(f"... ({len(result.x_labels) - n} more rows)")
    return "\n".join(lines)


def render_table(result: TableResult) -> str:
    """Render a table result with its paper-vs-model columns."""
    widths = [max(14, len(c)) for c in result.columns]
    if result.rows:
        for row in result.rows:
            widths = [
                max(w, len(f"{c:.3f}") if isinstance(c, float) else len(str(c)))
                for w, c in zip(widths, row)
            ]
    lines = [
        f"--- {result.table}: {result.title} ---",
        format_row(result.columns, widths),
    ]
    for row in result.rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
