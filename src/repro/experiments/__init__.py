"""Experiment harness reproducing every table and figure of the paper."""

from .configs import PAPER_GRID, SMALL_GRID, TABLE_GRID, ExperimentGrid
from .figures import (
    FigureResult,
    fig1_energy_breakdown,
    fig2_l2_mpki,
    fig5_bank_conflicts,
    fig6_speedup,
    fig7_gemm_comparison,
    fig8a_l2_transactions,
    fig8b_dram_transactions,
    fig9_energy_comparison,
)
from .paper_values import FIG_CLAIMS, TABLE2_FLOP_EFFICIENCY, TABLE3_ENERGY_SAVINGS
from .io import SweepJournal
from .report import format_row, render_bars, render_figure, render_table
from .runner import ExperimentRunner, Metrics
from .sweep import (
    ResilientSweep,
    SweepPoint,
    SweepTask,
    bandwidth_sweep,
    default_point_fn,
    l2_size_sweep,
    n_sweep,
    sm_count_sweep,
    sweep_point_digest,
    sweep_tasks,
)
from .validation import TrafficValidation, validate_kernel_traffic
from .full_report import ClaimCheck, ReproductionReport, full_reproduction_report
from .tables import (
    TableResult,
    table1_configuration,
    table2_flop_efficiency,
    table3_energy_savings,
)

__all__ = [
    "ExperimentGrid",
    "PAPER_GRID",
    "TABLE_GRID",
    "SMALL_GRID",
    "ExperimentRunner",
    "Metrics",
    "FigureResult",
    "TableResult",
    "fig1_energy_breakdown",
    "fig2_l2_mpki",
    "fig5_bank_conflicts",
    "fig6_speedup",
    "fig7_gemm_comparison",
    "fig8a_l2_transactions",
    "fig8b_dram_transactions",
    "fig9_energy_comparison",
    "table1_configuration",
    "table2_flop_efficiency",
    "table3_energy_savings",
    "render_figure",
    "render_table",
    "format_row",
    "TABLE2_FLOP_EFFICIENCY",
    "TABLE3_ENERGY_SAVINGS",
    "FIG_CLAIMS",
    "render_bars",
    "SweepPoint",
    "SweepTask",
    "ResilientSweep",
    "SweepJournal",
    "default_point_fn",
    "sweep_point_digest",
    "sweep_tasks",
    "bandwidth_sweep",
    "sm_count_sweep",
    "l2_size_sweep",
    "n_sweep",
    "TrafficValidation",
    "validate_kernel_traffic",
    "ClaimCheck",
    "ReproductionReport",
    "full_reproduction_report",
]
