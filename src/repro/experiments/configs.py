"""The paper's experimental grid (section IV).

K in {32, 64, 128, 256}; N fixed at 1024; M swept from 1024 to 524288.
Tables use the three M values the paper prints (1024, 131072, 524288).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.problem import (
    PAPER_K_VALUES,
    PAPER_M_SWEEP,
    PAPER_M_TABLE,
    PAPER_N,
    ProblemSpec,
)

__all__ = [
    "ExperimentGrid",
    "PAPER_GRID",
    "TABLE_GRID",
    "SMALL_GRID",
]


@dataclass(frozen=True)
class ExperimentGrid:
    """A K x M sweep at fixed N."""

    k_values: Sequence[int]
    m_values: Sequence[int]
    n: int = PAPER_N
    kernel: str = "gaussian"
    h: float = 1.0

    def __post_init__(self) -> None:
        if not self.k_values or not self.m_values:
            raise ValueError("grid must contain at least one K and one M")
        if any(v <= 0 for v in (*self.k_values, *self.m_values, self.n)):
            raise ValueError("grid dimensions must be positive")

    def specs(self) -> Iterator[ProblemSpec]:
        """All problem specs of the grid, K-major (the paper's grouping)."""
        for k in self.k_values:
            for m in self.m_values:
                yield ProblemSpec(M=m, N=self.n, K=k, h=self.h, kernel=self.kernel)

    def __len__(self) -> int:
        return len(self.k_values) * len(self.m_values)


#: Full sweep behind the paper's figures.
PAPER_GRID = ExperimentGrid(k_values=PAPER_K_VALUES, m_values=PAPER_M_SWEEP)

#: The three-column grid behind Tables II and III.
TABLE_GRID = ExperimentGrid(k_values=PAPER_K_VALUES, m_values=PAPER_M_TABLE)

#: A reduced grid for quick runs and CI.
SMALL_GRID = ExperimentGrid(k_values=(32, 256), m_values=(1024, 131072))
