"""The numbers the paper itself reports, for paper-vs-measured comparison.

Tables II and III are transcribed verbatim; the figures are bar charts, so
for them we encode the quantitative *claims* made in the text (maximum
speedups, crossover dimension, percentage bands) rather than eyeballed bar
heights.
"""

from __future__ import annotations

__all__ = [
    "TABLE2_FLOP_EFFICIENCY",
    "TABLE3_ENERGY_SAVINGS",
    "FIG_CLAIMS",
]

#: Table II: FLOP efficiency (%), keyed by (K, M) -> (cuBLAS-Unfused, Fused).
TABLE2_FLOP_EFFICIENCY = {
    (32, 1024): (19.92, 33.14),
    (32, 131072): (29.30, 50.86),
    (32, 524288): (29.02, 51.05),
    (64, 1024): (31.15, 41.86),
    (64, 131072): (45.22, 57.01),
    (64, 524288): (36.83, 56.26),
    (128, 1024): (44.32, 49.08),
    (128, 131072): (62.15, 60.03),
    (128, 524288): (61.76, 50.29),
    (256, 1024): (58.42, 53.75),
    (256, 131072): (74.02, 62.90),
    (256, 524288): (74.15, 62.05),
}

#: Table III: total-energy savings (%) of Fused vs cuBLAS-Unfused,
#: keyed by (K, M).
TABLE3_ENERGY_SAVINGS = {
    (32, 1024): 31.3,
    (32, 131072): 32.5,
    (32, 524288): 32.5,
    (64, 1024): 18.7,
    (64, 131072): 23.6,
    (64, 524288): 23.4,
    (128, 1024): 10.2,
    (128, 131072): 14.8,
    (128, 524288): 13.1,
    (256, 1024): 3.5,
    (256, 131072): 8.5,
    (256, 524288): 7.2,
}

#: Quantitative claims from the text, per figure.
FIG_CLAIMS = {
    "fig1": "DRAM access energy is 10-30% of total for the cuBLAS pipeline",
    "fig2": "L2 MPKI of the cuBLAS pipeline is highest at K=32 and falls with K",
    "fig6": (
        "Fused beats cuBLAS-Unfused by up to 1.8x for K<128 (max at K=32); "
        "above, the slower CUDA-C GEMM dominates and speedup drops below 1. "
        "Fused beats CUDA-Unfused everywhere: ~3.7x at K=32 down to ~1.5x at K=256."
    ),
    "fig7": "the CUDA-C GEMM is 1.5-2.0x slower than the cuBLAS GEMM",
    "fig8a": (
        "Fused L2 transactions are <50% of cuBLAS-Unfused in most cases, except "
        "small problems at K>=128 where the CUDA-C GEMM's extra L2 traffic offsets fusion"
    ),
    "fig8b": "Fused DRAM transactions are <10% of cuBLAS-Unfused in all problem sizes",
    "fig9": (
        "Fused saves >80% of DRAM access energy (3-33% of total); at K=256 more "
        "than 80% of energy goes to floating-point computation"
    ),
}
