"""Result serialization: figures/tables to CSV / JSON, sweep journals.

The benchmark harness renders text reports; downstream plotting or
regression tracking wants machine-readable output.  These helpers write
:class:`~repro.experiments.figures.FigureResult` and
:class:`~repro.experiments.tables.TableResult` to CSV, and round-trip
figure results through JSON.

:class:`SweepJournal` is the checkpoint store of the resilient sweep
harness: an append-only JSON-lines file with one record per completed grid
point, so an interrupted sweep resumes without recomputing finished work.
"""

from __future__ import annotations

import csv
import io as _io
import json
import pathlib
from typing import Dict

from ..errors import CheckpointCorruptionError
from ..obs.log import get_logger, log_event
from ..obs.metrics import counter_inc
from .figures import FigureResult
from .tables import TableResult

_log = get_logger("experiments.io")

__all__ = [
    "figure_to_csv",
    "table_to_csv",
    "figure_to_json",
    "figure_from_json",
    "SweepJournal",
]


class SweepJournal:
    """Append-only JSON-lines journal of completed sweep points.

    Each line is ``{"key": <point label>, "payload": {...}}``.  Appends are
    flushed line-at-a-time, so a killed sweep leaves at worst one truncated
    trailing line.  :meth:`load` *tolerates* exactly that shape of damage —
    the torn final record is dropped, a structured ``journal.truncated``
    event is logged, and the file is trimmed back to the last good line so
    the next append starts clean (the dropped point simply recomputes).
    Corruption anywhere *before* the final record cannot come from a torn
    append and still raises :class:`CheckpointCorruptionError` loudly —
    resuming over mid-file damage would silently skip completed work.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        """Whether any journal file is on disk yet."""
        return self.path.exists()

    def load(self) -> Dict[str, dict]:
        """Completed points, keyed by label; empty dict if no journal yet.

        A torn *final* line (the crash-mid-append signature) is dropped and
        trimmed; unreadable content with good records after it raises.
        """
        if not self.path.exists():
            return {}
        blob = self.path.read_bytes()
        done: Dict[str, dict] = {}
        offset = 0
        lineno = 0
        while offset < len(blob):
            nl = blob.find(b"\n", offset)
            end = len(blob) if nl == -1 else nl
            raw = blob[offset:end]
            lineno += 1
            if raw.strip():
                try:
                    rec = json.loads(raw.decode("utf-8"))
                    key, payload = rec["key"], rec["payload"]
                except (UnicodeDecodeError, json.JSONDecodeError, TypeError, KeyError) as exc:
                    tail = blob[end + 1:] if nl != -1 else b""
                    if tail.strip():
                        raise CheckpointCorruptionError(
                            f"journal {self.path} line {lineno} is unreadable "
                            f"with intact records after it: {exc}"
                        ) from exc
                    dropped = len(blob) - offset
                    log_event(
                        _log, 30, "journal.truncated",
                        path=str(self.path), line=lineno,
                        dropped_bytes=dropped, records_kept=len(done),
                        why=type(exc).__name__,
                    )
                    counter_inc("sweep.journal.truncations")
                    with self.path.open("r+b") as fh:
                        fh.truncate(offset)
                    break
                done[key] = payload
                if nl == -1:
                    # the record is complete but its terminating newline was
                    # torn off; repair it so the next append does not glue
                    # onto this line and corrupt it
                    with self.path.open("ab") as fh:
                        fh.write(b"\n")
            offset = end + 1 if nl != -1 else len(blob)
        return done

    def append(self, key: str, payload: dict) -> None:
        """Record one completed point (creates parent dirs on first write)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps({"key": key, "payload": payload}, sort_keys=True) + "\n")
            fh.flush()

    def clear(self) -> None:
        """Delete the journal (start the sweep from scratch)."""
        self.path.unlink(missing_ok=True)


def figure_to_csv(result: FigureResult, path: str | pathlib.Path | None = None) -> str:
    """CSV with one row per x-label and one column per series."""
    buf = _io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    names = list(result.series)
    writer.writerow(["config"] + names)
    for i, label in enumerate(result.x_labels):
        writer.writerow([label] + [repr(result.series[n][i]) for n in names])
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def table_to_csv(result: TableResult, path: str | pathlib.Path | None = None) -> str:
    """CSV with the table's own columns."""
    buf = _io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def figure_to_json(result: FigureResult, path: str | pathlib.Path | None = None) -> str:
    """JSON document capturing the whole figure result."""
    doc = {
        "figure": result.figure,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "x_labels": result.x_labels,
        "series": result.series,
    }
    text = json.dumps(doc, indent=2, sort_keys=True)
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def figure_from_json(text: str) -> FigureResult:
    """Reconstruct a figure result saved by :func:`figure_to_json`."""
    doc = json.loads(text)
    for key in ("figure", "title", "x_labels", "series"):
        if key not in doc:
            raise ValueError(f"not a serialized FigureResult: missing {key!r}")
    result = FigureResult(
        figure=doc["figure"],
        title=doc["title"],
        x_labels=list(doc["x_labels"]),
        paper_claim=doc.get("paper_claim", ""),
    )
    n = len(result.x_labels)
    for name, values in doc["series"].items():
        if len(values) != n:
            raise ValueError(f"series {name!r} length {len(values)} != {n} labels")
        result.series[name] = [float(v) for v in values]
    return result
