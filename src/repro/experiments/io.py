"""Result serialization: figures/tables to CSV / JSON, sweep journals.

The benchmark harness renders text reports; downstream plotting or
regression tracking wants machine-readable output.  These helpers write
:class:`~repro.experiments.figures.FigureResult` and
:class:`~repro.experiments.tables.TableResult` to CSV, and round-trip
figure results through JSON.

:class:`SweepJournal` is the checkpoint store of the resilient sweep
harness: an append-only JSON-lines file with one record per completed grid
point, so an interrupted sweep resumes without recomputing finished work.
"""

from __future__ import annotations

import csv
import io as _io
import json
import pathlib
from typing import Dict

from ..errors import CheckpointCorruptionError
from .figures import FigureResult
from .tables import TableResult

__all__ = [
    "figure_to_csv",
    "table_to_csv",
    "figure_to_json",
    "figure_from_json",
    "SweepJournal",
]


class SweepJournal:
    """Append-only JSON-lines journal of completed sweep points.

    Each line is ``{"key": <point label>, "payload": {...}}``.  Appends are
    flushed line-at-a-time, so a killed sweep leaves at worst one truncated
    trailing line — which :meth:`load` rejects loudly rather than silently
    resuming from a lie.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        """Whether any journal file is on disk yet."""
        return self.path.exists()

    def load(self) -> Dict[str, dict]:
        """Completed points, keyed by label; empty dict if no journal yet."""
        if not self.path.exists():
            return {}
        done: Dict[str, dict] = {}
        for i, line in enumerate(self.path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                key, payload = rec["key"], rec["payload"]
            except (json.JSONDecodeError, TypeError, KeyError) as exc:
                raise CheckpointCorruptionError(
                    f"journal {self.path} line {i} is unreadable: {exc}"
                ) from exc
            done[key] = payload
        return done

    def append(self, key: str, payload: dict) -> None:
        """Record one completed point (creates parent dirs on first write)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps({"key": key, "payload": payload}, sort_keys=True) + "\n")
            fh.flush()

    def clear(self) -> None:
        """Delete the journal (start the sweep from scratch)."""
        self.path.unlink(missing_ok=True)


def figure_to_csv(result: FigureResult, path: str | pathlib.Path | None = None) -> str:
    """CSV with one row per x-label and one column per series."""
    buf = _io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    names = list(result.series)
    writer.writerow(["config"] + names)
    for i, label in enumerate(result.x_labels):
        writer.writerow([label] + [repr(result.series[n][i]) for n in names])
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def table_to_csv(result: TableResult, path: str | pathlib.Path | None = None) -> str:
    """CSV with the table's own columns."""
    buf = _io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def figure_to_json(result: FigureResult, path: str | pathlib.Path | None = None) -> str:
    """JSON document capturing the whole figure result."""
    doc = {
        "figure": result.figure,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "x_labels": result.x_labels,
        "series": result.series,
    }
    text = json.dumps(doc, indent=2, sort_keys=True)
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def figure_from_json(text: str) -> FigureResult:
    """Reconstruct a figure result saved by :func:`figure_to_json`."""
    doc = json.loads(text)
    for key in ("figure", "title", "x_labels", "series"):
        if key not in doc:
            raise ValueError(f"not a serialized FigureResult: missing {key!r}")
    result = FigureResult(
        figure=doc["figure"],
        title=doc["title"],
        x_labels=list(doc["x_labels"]),
        paper_claim=doc.get("paper_claim", ""),
    )
    n = len(result.x_labels)
    for name, values in doc["series"].items():
        if len(values) != n:
            raise ValueError(f"series {name!r} length {len(values)} != {n} labels")
        result.series[name] = [float(v) for v in values]
    return result
