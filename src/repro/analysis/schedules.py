"""Race certification for *arbitrary* tiling schedules.

The paper-kernel generators in :mod:`repro.core.simt_kernels` hard-code
the 128 x 128 / 16 x 16 / 8 x 8 design point, so the race detector could
only certify that one shape.  The autotuner v2 search space is much
wider — any launchable (mc, nc, kc, microtile, buffering) point — and
every winner it returns must carry a race-free verdict.  This module
supplies the missing piece: a *shape-generic* schedule kernel whose
token stream is derived from the blocking parameters alone, replayed
through the same symbolic tracer and barrier-interval analysis as the
paper kernels.

The generic kernel reproduces the access *structure* of the fused
kernel (addresses and barriers), not its arithmetic:

* **staging** — each thread stores its ``tile_words / threads``
  contiguous words of the (tileA, tileB) buffer (the construction-time
  validation of :class:`~repro.core.tiling.TilingConfig` guarantees the
  division is exact);
* **panel loop** — double-buffered schedules stage panel ``p+1`` into
  the idle buffer while computing panel ``p`` and cross *one* barrier
  per iteration (the paper's Algorithm-2 overlap); single-buffered
  schedules need *two* barriers per panel (stores-complete and
  reads-complete);
* **compute** — per k-step each thread loads its ``micro_m`` A-words
  and ``micro_n`` B-words from the current buffer;
* **epilogue** — each thread stages ``micro_m`` partials to a scratch
  region, crosses a barrier, then reads a *different* thread's partials
  (every thread reads its ring successor's slot — a uniform access that
  keeps the warps in lockstep *and* turns a missing epilogue barrier
  into a read-write race the detector must flag), and finally commits
  through an atomic (exempt from racing by commutativity) or, for the
  two-pass strategy, a global store outside shared memory.

Two panels are enough to exercise every interval kind (stage/compute
overlap, buffer swap, epilogue), so certification cost is independent
of the problem's K.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..core.tiling import TilingConfig
from ..gpu.simt import ThreadCtx
from .races import RaceReport, detect_races

__all__ = [
    "generic_schedule_kernel",
    "schedule_race_args",
    "certify_schedule_races",
]

#: Panels replayed during certification — two suffice to cover the
#: buffer-swap and stage/compute-overlap intervals of any schedule.
CERTIFY_PANELS = 2


def generic_schedule_kernel(
    ctx: ThreadCtx,
    mc: int,
    nc: int,
    kc: int,
    micro_m: int,
    micro_n: int,
    panels: int,
    double_buffered: bool,
    out: np.ndarray,
    atomic_reduction: bool,
    skip_epilogue_barrier: bool = False,
) -> Generator[Any, Any, None]:
    """Shape-generic fused-schedule kernel for symbolic replay.

    ``skip_epilogue_barrier`` exists for the negative-control tests: it
    reproduces the classic staged-reduction bug (reading a neighbour's
    partial before the barrier that publishes it) that the detector must
    catch.
    """
    bx = nc // micro_n
    threads = bx * (mc // micro_m)
    tile_words = mc * kc + kc * nc
    per_thread = tile_words // threads
    buffers = 2 if double_buffered else 1
    scratch = buffers * tile_words  # partials live above the tile buffers
    tid = ctx.tid
    zero = np.zeros(1, dtype=np.float32)

    def stage(buf: int) -> Generator[Any, Any, None]:
        base = buf * tile_words + tid * per_thread
        for w in range(per_thread):
            yield ctx.sts(base + w, zero)

    def compute(buf: int) -> Generator[Any, Any, None]:
        base = buf * tile_words
        row0 = (tid // bx) * micro_m
        col0 = (tid % bx) * micro_n
        for k in range(kc):
            for i in range(micro_m):
                yield ctx.lds(base + (row0 + i) * kc + k)
            for j in range(micro_n):
                yield ctx.lds(base + mc * kc + k * nc + col0 + j)

    if double_buffered:
        # Algorithm-2 overlap: stage p+1 into the idle buffer while
        # computing p; one barrier publishes both.
        yield from stage(0)
        yield ctx.barrier()
        for p in range(panels):
            if p + 1 < panels:
                yield from stage((p + 1) % 2)
            yield from compute(p % 2)
            yield ctx.barrier()
    else:
        # Single buffer: stores-complete and reads-complete barriers.
        for p in range(panels):
            yield from stage(0)
            yield ctx.barrier()
            yield from compute(0)
            yield ctx.barrier()

    # Epilogue: publish partials, synchronize, cross-read for reduction.
    for i in range(micro_m):
        yield ctx.sts(scratch + tid * micro_m + i, zero)
    if not skip_epilogue_barrier:
        yield ctx.barrier()
    partner = (tid + 1) % threads
    total = 0.0
    for i in range(micro_m):
        val = yield ctx.lds(scratch + partner * micro_m + i)
        total += float(val) if val is not None else 0.0
    if atomic_reduction:
        yield ctx.atomic_add(out, tid % out.size, total)
    # two-pass: the partial goes to global memory, outside the shared
    # address space the race analysis covers — nothing to yield.


def schedule_race_args(
    tiling: TilingConfig,
    reduction: str = "atomic",
    panels: int = CERTIFY_PANELS,
    skip_epilogue_barrier: bool = False,
) -> tuple[Any, ...]:
    """Positional args binding :func:`generic_schedule_kernel` to a tiling."""
    if reduction not in ("atomic", "two-pass"):
        raise ValueError(f"unknown reduction strategy {reduction!r}")
    out = np.zeros(tiling.mc, dtype=np.float64)
    return (
        tiling.mc,
        tiling.nc,
        tiling.kc,
        tiling.micro_m,
        tiling.micro_n,
        panels,
        tiling.double_buffered,
        out,
        reduction == "atomic",
        skip_epilogue_barrier,
    )


def certify_schedule_races(
    tiling: TilingConfig,
    reduction: str = "atomic",
    panels: int = CERTIFY_PANELS,
) -> RaceReport:
    """Race-check the generic schedule at one blocking point.

    Unlike the bank certifier — whose Fig.-5 mapping only *describes*
    the 128 x 128 / 16 x 16 shape — this applies to every launchable
    tiling, so each search winner gets a definite race verdict.
    """
    report = detect_races(
        generic_schedule_kernel,
        (tiling.block_dim_x, tiling.block_dim_y),
        *schedule_race_args(tiling, reduction, panels),
    )
    report.kernel_name = (
        f"schedule[{tiling.mc}x{tiling.nc}x{tiling.kc}"
        f"/{tiling.micro_m}x{tiling.micro_n}"
        f"{'/db' if tiling.double_buffered else '/sb'}/{reduction}]"
    )
    return report
