"""Barrier-interval race detection over symbolic SIMT traces.

GPUVerify and GKLEE analyse GPU kernels by observing that ``__syncthreads``
splits an execution into *barrier intervals*: within one interval no
inter-thread ordering exists, so any pair of accesses to the same shared
word by two different threads — where at least one is a store — is a data
race.  Across intervals the barrier orders everything, so no pair spanning
a barrier can race.

:func:`detect_races` applies exactly that rule to the token streams
recorded by :func:`repro.analysis.trace.trace_kernel`:

* **write-write** — two distinct threads store the same word in the same
  interval (even storing the same value: the hardware leaves the winning
  lane undefined);
* **read-write** — a thread loads a word that a *different* thread stores
  in the same interval;
* **barrier-divergence** — threads crossed different numbers of barriers,
  which on pre-Volta hardware is undefined behaviour (and deadlocks the
  executing interpreter in :mod:`repro.gpu.simt`).

Same-thread read-after-write in one interval is fine (a thread observes
its own program order), and atomics commute by construction, so they are
exempt.

When violations are found the kernel is replayed once more in detail mode
to attach file/line locations (the generator's suspended ``yield`` line)
to each conflicting access — this is what turns "interval 3, word 1042"
into an actionable report on a seeded missing-barrier mutant.

:func:`certify_paper_kernels` packages the paper configurations: the fused
CTA kernel (Algorithm 2's tail) and the double-buffered panel loop for
every paper K ∈ {32, 64, 128, 256} must all certify race-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from .trace import AccessEvent, trace_kernel

__all__ = [
    "RaceLocation",
    "RaceViolation",
    "RaceReport",
    "detect_races",
    "PAPER_K_VALUES",
    "certify_paper_kernels",
]

#: The problem K values the paper evaluates (Section V); the double-buffered
#: panel loop runs K/kc = K/8 panels for each.
PAPER_K_VALUES: Tuple[int, ...] = (32, 64, 128, 256)

#: Cap on distinct violations attached to one report: a missing barrier
#: makes *every* staged word race, and 25 witnesses are as actionable as
#: two thousand.  The total count is preserved separately.
MAX_REPORTED_VIOLATIONS = 25

#: Cap on per-violation witness locations.
MAX_LOCATIONS_PER_VIOLATION = 8


@dataclass(frozen=True)
class RaceLocation:
    """One access participating in a violation, with its source line."""

    thread: int
    kind: str  # "load" | "store"
    line: int

    def to_payload(self) -> Dict[str, Any]:
        return {"thread": self.thread, "kind": self.kind, "line": self.line}


@dataclass(frozen=True)
class RaceViolation:
    """One conflicting shared word (or one barrier-divergence witness)."""

    kind: str  # "write-write" | "read-write" | "barrier-divergence"
    interval: int
    address: Optional[int]
    threads: Tuple[int, ...]
    locations: Tuple[RaceLocation, ...] = ()

    def describe(self, source_file: str = "") -> str:
        where = f"{source_file}:" if source_file else ""
        if self.kind == "barrier-divergence":
            return (
                f"barrier-divergence: threads crossed differing barrier counts "
                f"(witnesses: {list(self.threads)})"
            )
        locs = ", ".join(
            f"t{loc.thread} {loc.kind}@{where}{loc.line}" for loc in self.locations
        )
        return (
            f"{self.kind} on word {self.address} in interval {self.interval} "
            f"between threads {list(self.threads)}"
            + (f" [{locs}]" if locs else "")
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "interval": self.interval,
            "address": self.address,
            "threads": list(self.threads),
            "locations": [loc.to_payload() for loc in self.locations],
        }


@dataclass
class RaceReport:
    """Verdict of the race detector for one kernel configuration."""

    kernel_name: str
    source_file: str
    block_dim: Tuple[int, int]
    intervals_checked: int
    accesses_checked: int
    barriers: int
    violations: Tuple[RaceViolation, ...]
    total_conflicting_words: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def truncated(self) -> bool:
        return self.total_conflicting_words > len(
            [v for v in self.violations if v.kind != "barrier-divergence"]
        )

    def describe(self) -> str:
        head = (
            f"{self.kernel_name}: {self.intervals_checked} interval(s), "
            f"{self.accesses_checked} access(es), {self.barriers} barrier(s)"
        )
        if self.ok:
            return head + " — race-free"
        lines = [head + f" — {self.total_conflicting_words} conflicting word(s)"]
        lines += ["  " + v.describe(self.source_file) for v in self.violations]
        if self.truncated:
            lines.append(
                f"  ... report truncated to {len(self.violations)} violation(s)"
            )
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel_name,
            "source_file": self.source_file,
            "block_dim": list(self.block_dim),
            "intervals": self.intervals_checked,
            "accesses": self.accesses_checked,
            "barriers": self.barriers,
            "ok": self.ok,
            "conflicting_words": self.total_conflicting_words,
            "violations": [v.to_payload() for v in self.violations],
        }


def _conflicting_words(
    read_threads: np.ndarray,
    read_addresses: np.ndarray,
    write_threads: np.ndarray,
    write_addresses: np.ndarray,
) -> Dict[int, str]:
    """Map of racing word address -> violation kind for one interval."""
    out: Dict[int, str] = {}
    if write_addresses.size == 0:
        return out
    # Unique (address, thread) store pairs; an address with >1 distinct
    # writer thread is a write-write race.
    wpairs = np.unique(np.stack([write_addresses, write_threads], axis=1), axis=0)
    waddrs, wcounts = np.unique(wpairs[:, 0], return_counts=True)
    for a in waddrs[wcounts > 1]:
        out[int(a)] = "write-write"
    if read_addresses.size:
        # Addresses written by exactly one thread: racing iff some *other*
        # thread reads them in the same interval.  Reads of unwritten words
        # (the overwhelmingly common case) are masked out vectorized, so the
        # Python loop below only sees candidate collisions.
        single = {int(a) for a in waddrs[wcounts == 1]}
        writer_of = {int(a): int(t) for a, t in wpairs if int(a) in single}
        rpairs = np.unique(np.stack([read_addresses, read_threads], axis=1), axis=0)
        touched = rpairs[np.isin(rpairs[:, 0], waddrs)]
        for a, t in touched:
            ai = int(a)
            w = writer_of.get(ai)
            if w is not None and w != int(t) and ai not in out:
                out[ai] = "read-write"
    return out


def _locations_for(
    events: Sequence[AccessEvent], address: int, limit: int = MAX_LOCATIONS_PER_VIOLATION
) -> Tuple[RaceLocation, ...]:
    locs: List[RaceLocation] = []
    for ev in events:
        if ev.address <= address < ev.address + ev.width:
            locs.append(RaceLocation(ev.thread, ev.kind, ev.line))
            if len(locs) >= limit:
                break
    return tuple(locs)


def detect_races(
    kernel: Callable[..., Generator[Any, Any, None]],
    block_dim: Tuple[int, int],
    *args: Any,
    warp_size: int = 32,
    max_violations: int = MAX_REPORTED_VIOLATIONS,
    **kwargs: Any,
) -> RaceReport:
    """Race-check one kernel configuration; see the module docstring.

    The kernel is replayed symbolically (twice when violations are found:
    the second pass collects file/line witnesses for the flagged
    intervals), so ``args`` must make the kernel's *addressing* well
    defined but need not be meaningful data — zeros are customary.
    """
    trace = trace_kernel(kernel, block_dim, *args, warp_size=warp_size, **kwargs)

    flagged: List[Tuple[int, int, str]] = []  # (interval, address, kind)
    total_conflicts = 0
    for iv in trace.intervals:
        words = _conflicting_words(
            iv.read_threads, iv.read_addresses, iv.write_threads, iv.write_addresses
        )
        total_conflicts += len(words)
        for addr in sorted(words):
            if len(flagged) < max_violations:
                flagged.append((iv.index, addr, words[addr]))

    violations: List[RaceViolation] = []
    if not trace.barriers_aligned:
        counts = trace.barrier_counts
        majority = max(set(counts), key=counts.count)
        witnesses = tuple(t for t, c in enumerate(counts) if c != majority)[:8]
        violations.append(
            RaceViolation(
                kind="barrier-divergence",
                interval=min(counts),
                address=None,
                threads=witnesses,
            )
        )

    if flagged:
        detail = trace_kernel(
            kernel,
            block_dim,
            *args,
            warp_size=warp_size,
            detail_intervals={iv for iv, _, _ in flagged},
            **kwargs,
        )
        for iv_index, addr, kind in flagged:
            events = detail.intervals[iv_index].events or []
            relevant = [ev for ev in events if ev.address <= addr < ev.address + ev.width]
            threads = tuple(sorted({ev.thread for ev in relevant}))
            violations.append(
                RaceViolation(
                    kind=kind,
                    interval=iv_index,
                    address=addr,
                    threads=threads,
                    locations=_locations_for(relevant, addr),
                )
            )

    return RaceReport(
        kernel_name=trace.kernel_name,
        source_file=trace.source_file,
        block_dim=trace.block_dim,
        intervals_checked=trace.num_intervals,
        accesses_checked=trace.total_accesses(),
        barriers=max(trace.barrier_counts) if trace.barrier_counts else 0,
        violations=tuple(violations),
        total_conflicting_words=total_conflicts,
    )


def certify_paper_kernels(
    k_values: Sequence[int] = PAPER_K_VALUES, kc: int = 8
) -> List[RaceReport]:
    """Race reports for the paper's kernels at every requested K.

    Covers the fused CTA kernel (staging + rank-kc update + intra-CTA
    reduction + atomic commit, i.e. Algorithm 2's tail) once — its token
    stream does not depend on K — and the double-buffered panel loop
    (Algorithm 2 lines 5-13) at each ``K``, where the panel count K/kc
    changes the interval structure.  The unfused eval+sum tail rides along
    as a third configuration.
    """
    from ..core.simt_kernels import (
        double_buffered_gemm_kernel,
        evalsum_cta_kernel,
        fused_cta_kernel,
    )

    reports: List[RaceReport] = []

    tileA = np.zeros((128, kc), dtype=np.float32)
    tileB = np.zeros((kc, 128), dtype=np.float32)
    vec = np.zeros(128, dtype=np.float32)
    reports.append(
        detect_races(
            fused_cta_kernel,
            (16, 16),
            tileA,
            tileB,
            vec,
            vec,
            vec,
            np.zeros(128, dtype=np.float32),
            1.0,
            kc,
        )
    )

    reports.append(
        detect_races(
            evalsum_cta_kernel,
            (16, 16),
            np.zeros((128, 128), dtype=np.float32),
            vec,
            vec,
            vec,
            np.zeros(128, dtype=np.float32),
            1.0,
        )
    )

    for K in k_values:
        if K % kc:
            raise ValueError(f"paper K values must be multiples of kc={kc}, got {K}")
        panels = K // kc
        tileAs = np.zeros((panels, 128, kc), dtype=np.float32)
        tileBs = np.zeros((panels, kc, 128), dtype=np.float32)
        acc = np.zeros((128, 128), dtype=np.float32)
        report = detect_races(
            double_buffered_gemm_kernel, (16, 16), tileAs, tileBs, acc, kc
        )
        report.kernel_name = f"{report.kernel_name}[K={K}]"
        reports.append(report)

    return reports
