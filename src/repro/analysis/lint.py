"""AST lint for the repository's determinism and hot-path invariants.

Every prior PR left behind an invariant that is enforced by convention
only: results must not depend on hash ordering (the batched engines are
bit-identical to the loops), the ABFT checksums must stay in float64, the
obs/faults hooks must cost one ``is None`` test when disabled, and every
configuration field must reach :mod:`repro.core.digest`'s key material.
This pass turns those conventions into checkable rules:

``RA001 bare-except``
    ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and buries
    the structured :mod:`repro.errors` taxonomy; name the exception.

``RA002 unordered-iteration``
    iterating a ``set``/``frozenset`` expression (literal, constructor,
    comprehension, or a name bound to one in the same scope) in a ``for``,
    comprehension, or ``sum()``/accumulation context.  Set order depends
    on ``PYTHONHASHSEED`` for str keys; one such iteration feeding a float
    accumulation silently breaks bit-reproducibility.  Wrap in
    ``sorted(...)`` to accept.

``RA003 checksum-narrowing``
    a dtype-narrowing operation (``.astype(np.float32)``,
    ``np.float32(...)``, ``dtype=np.float32``) inside a function whose
    name marks it part of the float64 ABFT checksum path (contains
    ``checksum`` or ``abft``).  Narrowing there destroys the error bound
    the recovery logic relies on.

``RA004 hot-path-guard``
    the result of ``active_injector()`` / ``active_metrics()`` /
    ``active_tracer()`` used as a truth value (directly or via a local
    binding) instead of compared ``is None`` / ``is not None``.  The
    zero-cost disabled path is *specified* as a single identity test; a
    truthiness protocol call would reintroduce per-access overhead and
    break on empty-but-armed registries.

``RA005 config-digest-fields``
    a known configuration dataclass (the classes
    :func:`repro.core.digest.canonical_payload` flattens into store keys)
    that is not declared ``@dataclass(frozen=True)``, or whose methods
    assign ``self.<attr>`` outside the declared fields.  The digest
    includes exactly the declared fields — hidden mutable state would
    change results without changing the key.

``RA006 blocking-in-async``
    a blocking call — ``time.sleep``, ``subprocess.run``/``Popen``/
    ``check_*``, ``os.fsync``/``os.system``, builtin ``open``, or a
    pathlib-style ``read_text``/``write_bytes`` method — directly inside
    an ``async def`` body.  One such call stalls the entire event loop:
    every in-flight request of :mod:`repro.serve` pays the latency, and
    the micro-batcher's deadline arithmetic goes wrong.  Offload through
    ``loop.run_in_executor`` (a nested *sync* helper is fine; the rule
    only fires in the async scope itself).

``RA008 uncertified-mixed-accumulation``
    accumulation of a float64-typed operand into a float32-typed target
    (``acc += x64`` or ``np.add(acc32, x64, out=acc32)``) outside an
    explicitly certified reduce plan (an enclosing function whose name
    contains ``certified``).  Mixed-precision accumulation silently
    narrows every partial to float32 — the exact failure mode the
    accuracy certifier's narrowed-accumulator negative control models —
    so it is only legal where a :mod:`repro.analysis.fpcert` certificate
    covers the plan.

``RA007 leaky-span``
    a ``span(...)`` / ``tracer.span(...)`` call in serving code (any path
    with a ``serve`` directory component) that is not the context
    expression of a ``with`` statement.  A span's clock starts at
    creation and only ``__exit__`` files it with the tracer, so a span
    held as a plain value leaks — and corrupts the thread-local nesting
    stack — on every exception path.  Request-handling code is exactly
    where exceptions are routine (sheds, deadlines, resets), so there the
    context-manager form is mandatory; elsewhere deliberate manual
    handling stays allowed.

:func:`lint_paths` walks files or directories and returns
:class:`LintFinding` records; ``tools/run_analysis.py`` gates them against
the committed baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["LintFinding", "lint_source", "lint_file", "lint_paths", "RULES"]

#: rule id -> one-line description (the CLI prints this table).
RULES: Dict[str, str] = {
    "RA001": "bare except: swallows SystemExit and the repro.errors taxonomy",
    "RA002": "iteration over an unordered set feeding deterministic code",
    "RA003": "dtype narrowing inside a float64 ABFT checksum path",
    "RA004": "obs/faults hot-path guard must be `is None`, not truthiness",
    "RA005": "config dataclass must be frozen with all state in digested fields",
    "RA006": "blocking call inside async def stalls the event loop",
    "RA007": "span() in serve code must be a with-statement context manager",
    "RA008": "float64 operand accumulated into a float32 target outside a "
             "certified reduce plan",
}

#: Configuration classes whose dataclass fields form digest key material.
CONFIG_CLASSES: Set[str] = {
    "ProblemSpec",
    "TilingConfig",
    "DeviceSpec",
    "Calibration",
    "FaultSpec",
    "ScheduleCandidate",
}

#: The zero-cost hook accessors guarded by RA004.
_HOT_ACCESSORS: Set[str] = {
    "active_injector",
    "active_metrics",
    "active_tracer",
    "active_energy_meter",
}

_CHECKSUM_MARKERS: Tuple[str, ...] = ("checksum", "abft")

#: module.attr calls RA006 considers blocking (module name -> attrs)
_BLOCKING_MODULE_CALLS: Dict[str, Set[str]] = {
    "time": {"sleep"},
    "subprocess": {"run", "call", "check_call", "check_output", "Popen"},
    "os": {"fsync", "system"},
}

#: method names RA006 treats as sync file I/O regardless of receiver
_BLOCKING_METHODS: Set[str] = {"read_text", "write_text", "read_bytes", "write_bytes"}


def _blocking_call(node: ast.Call) -> Optional[str]:
    """The display name of a blocking call, or None."""
    f = node.func
    if isinstance(f, ast.Name) and f.id == "open":
        return "open()"
    if isinstance(f, ast.Attribute):
        if isinstance(f.value, ast.Name):
            attrs = _BLOCKING_MODULE_CALLS.get(f.value.id)
            if attrs is not None and f.attr in attrs:
                return f"{f.value.id}.{f.attr}()"
        if f.attr in _BLOCKING_METHODS:
            return f".{f.attr}()"
    return None


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    context: str  # enclosing qualname ("<module>" at top level)
    message: str

    @property
    def key(self) -> str:
        """Baseline key: stable across unrelated line-number churn."""
        return f"{self.rule}:{self.path}:{self.context}"

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.context}] {self.message}"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "message": self.message,
            "key": self.key,
        }


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Syntactic judgement: does ``node`` evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a & b, a - b, a ^ b) of known sets
        return _is_set_expr(node.left, set_names) and _is_set_expr(node.right, set_names)
    return False


def _is_sorted_call(node: ast.AST) -> bool:
    # Only sorted() launders set order; list()/tuple() preserve hash order.
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _is_narrowing_call(node: ast.Call) -> bool:
    """``x.astype(np.float32)`` / ``np.float32(...)`` / ``dtype=np.float32``."""

    def names_float32(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr in ("float32", "float16"):
            return True
        if isinstance(expr, ast.Name) and expr.id in ("float32", "float16"):
            return True
        if isinstance(expr, ast.Constant) and expr.value in ("float32", "float16"):
            return True
        return False

    if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
        if any(names_float32(a) for a in node.args):
            return True
        if any(kw.arg == "dtype" and names_float32(kw.value) for kw in node.keywords):
            return True
    if names_float32(node.func):
        return True
    return any(kw.arg == "dtype" and names_float32(kw.value) for kw in node.keywords)


#: dtype spellings RA008 tracks (syntactic, literal-only: no flow analysis)
_TRACKED_DTYPES: Tuple[str, ...] = ("float32", "float64")


def _literal_dtype(expr: ast.AST) -> Optional[str]:
    """``np.float32`` / bare ``float64`` / ``"float32"`` -> the dtype name."""
    if isinstance(expr, ast.Attribute) and expr.attr in _TRACKED_DTYPES:
        return expr.attr
    if isinstance(expr, ast.Name) and expr.id in _TRACKED_DTYPES:
        return expr.id
    if isinstance(expr, ast.Constant) and expr.value in _TRACKED_DTYPES:
        return str(expr.value)
    return None


def _expr_dtype(node: ast.AST, dtype_names: Dict[str, str]) -> Optional[str]:
    """Syntactic dtype of an expression, when a literal pins it down.

    Recognizes ``x.astype(np.float64)``, ``np.float64(...)``, any call
    carrying ``dtype=np.float64``, and names bound to such expressions in
    an enclosing scope.  Anything else (variable dtypes, arithmetic) is
    ``None`` — untracked, never reported.
    """
    if isinstance(node, ast.Name):
        return dtype_names.get(node.id)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            for a in node.args:
                dt = _literal_dtype(a)
                if dt is not None:
                    return dt
        dt = _literal_dtype(node.func)
        if dt is not None:
            return dt
        for kw in node.keywords:
            if kw.arg == "dtype":
                dt = _literal_dtype(kw.value)
                if dt is not None:
                    return dt
    return None


def _mentions_dtype(node: ast.AST, dtype_names: Dict[str, str], want: str) -> bool:
    """Does any sub-expression of ``node`` carry dtype ``want``?"""
    for sub in ast.walk(node):
        if _expr_dtype(sub, dtype_names) == want:
            return True
    return False


def _call_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
    return None


class _Linter(ast.NodeVisitor):
    """Single-pass visitor applying every rule; tracks the qualname stack."""

    def __init__(self, path: str, enabled: Set[str]) -> None:
        self.path = path
        self.enabled = enabled
        self.findings: List[LintFinding] = []
        self.stack: List[str] = []
        # per-function-scope name tracking for RA002 / RA004
        self.set_names: List[Set[str]] = [set()]
        self.hot_names: List[Set[str]] = [set()]
        # RA008: name -> literal dtype ("float32" | "float64") per scope
        self.dtype_names: List[Dict[str, str]] = [{}]
        # RA006: is the innermost function scope an `async def`?
        self.async_scope: List[bool] = [False]
        # RA007: span() calls that ARE with-statement context expressions
        self._with_spans: Set[int] = set()
        # RA007 only binds in serving code (a `serve` path component)
        self._serve_path = "serve" in Path(path).parts

    # -- bookkeeping -------------------------------------------------------
    @property
    def context(self) -> str:
        return ".".join(self.stack) if self.stack else "<module>"

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.enabled:
            self.findings.append(
                LintFinding(
                    rule=rule,
                    path=self.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    context=self.context,
                    message=message,
                )
            )

    def _in_scope(self, frames: List[Set[str]], name: str) -> bool:
        return any(name in frame for frame in frames)

    # -- scope handling ----------------------------------------------------
    def _visit_scope(self, node: ast.AST, name: str, is_async: bool = False) -> None:
        self.stack.append(name)
        self.set_names.append(set())
        self.hot_names.append(set())
        self.dtype_names.append({})
        self.async_scope.append(is_async)
        self.generic_visit(node)
        self.async_scope.pop()
        self.dtype_names.pop()
        self.hot_names.pop()
        self.set_names.pop()
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_checksum_fn(node)
        self._visit_scope(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.name, is_async=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_config_class(node)
        self._visit_scope(node, node.name)

    # -- RA001 -------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit("RA001", node, "bare `except:`; name the exception type")
        self.generic_visit(node)

    # -- RA002 / RA004 name tracking ---------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if targets:
            if _is_set_expr(node.value, self._flat(self.set_names)):
                self.set_names[-1].update(targets)
            else:
                for frame in self.set_names:
                    frame.difference_update(targets)
            if _call_name(node.value) in _HOT_ACCESSORS:
                self.hot_names[-1].update(targets)
            else:
                for frame in self.hot_names:
                    frame.difference_update(targets)
            dt = _expr_dtype(node.value, self._flat_dtypes())
            for frame in self.dtype_names:
                for t in targets:
                    frame.pop(t, None)
            if dt is not None:
                self.dtype_names[-1].update({t: dt for t in targets})
        self.generic_visit(node)

    @staticmethod
    def _flat(frames: List[Set[str]]) -> Set[str]:
        out: Set[str] = set()
        for f in frames:
            out |= f
        return out

    def _flat_dtypes(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for frame in self.dtype_names:
            out.update(frame)
        return out

    # -- RA002 -------------------------------------------------------------
    def _check_unordered_iter(self, iter_node: ast.AST) -> None:
        if _is_sorted_call(iter_node):
            return
        if _is_set_expr(iter_node, self._flat(self.set_names)):
            self.emit(
                "RA002",
                iter_node,
                "iterating an unordered set; wrap in sorted(...) for a "
                "deterministic order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # sum(<set>) accumulates floats in hash order
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("sum", "math.fsum", "fsum")
            and node.args
        ):
            self._check_unordered_iter(node.args[0])
        # RA006: blocking call directly inside an async def body
        if self.async_scope[-1]:
            blocked = _blocking_call(node)
            if blocked is not None:
                self.emit(
                    "RA006",
                    node,
                    f"blocking call {blocked} inside `async def "
                    f"{self.stack[-1] if self.stack else '?'}`; it stalls the "
                    "event loop — offload via loop.run_in_executor",
                )
        # RA007: a span in serve code held as a value instead of a `with`
        if (
            self._serve_path
            and _call_name(node) == "span"
            and id(node) not in self._with_spans
        ):
            self.emit(
                "RA007",
                node,
                "span() held as a value in serve code; it leaks (and corrupts "
                "span nesting) on exception paths — use `with span(...):`",
            )
        # RA008: np.add(acc32, x64, out=acc32) is an accumulation too
        self._check_mixed_add_call(node)
        # RA003 context is handled in _check_checksum_fn via a sub-walk.
        self.generic_visit(node)

    # -- RA008 -------------------------------------------------------------
    def _in_certified_plan(self) -> bool:
        """Escape hatch: an enclosing scope named *certified* owns the plan."""
        return any("certified" in name.lower() for name in self.stack)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            isinstance(node.op, ast.Add)
            and isinstance(node.target, ast.Name)
            and not self._in_certified_plan()
        ):
            dtypes = self._flat_dtypes()
            if dtypes.get(node.target.id) == "float32" and _mentions_dtype(
                node.value, dtypes, "float64"
            ):
                self.emit(
                    "RA008",
                    node,
                    f"float64 operand accumulated into float32 target "
                    f"{node.target.id!r} outside a certified reduce plan; "
                    "narrowing every partial voids the certified error bound",
                )
        self.generic_visit(node)

    def _check_mixed_add_call(self, node: ast.Call) -> None:
        f = node.func
        if not (
            isinstance(f, ast.Attribute)
            and f.attr == "add"
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
        ):
            return
        if self._in_certified_plan():
            return
        dtypes = self._flat_dtypes()
        out_name: Optional[str] = None
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                out_name = kw.value.id
        if out_name is None or dtypes.get(out_name) != "float32":
            return
        if any(_mentions_dtype(a, dtypes, "float64") for a in node.args):
            self.emit(
                "RA008",
                node,
                f"np.add with a float64 operand into float32 out={out_name!r} "
                "outside a certified reduce plan; narrowing every partial "
                "voids the certified error bound",
            )

    # -- RA007 -------------------------------------------------------------
    def _register_with_items(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                if _call_name(item.context_expr) == "span":
                    self._with_spans.add(id(item.context_expr))

    def visit_With(self, node: ast.With) -> None:
        self._register_with_items(node)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._register_with_items(node)
        self.generic_visit(node)

    # -- RA003 -------------------------------------------------------------
    def _check_checksum_fn(self, node: ast.FunctionDef) -> None:
        name = node.name.lower()
        if not any(marker in name for marker in _CHECKSUM_MARKERS):
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _is_narrowing_call(sub):
                self.emit(
                    "RA003",
                    sub,
                    f"dtype narrowing inside checksum path {node.name!r}; "
                    "ABFT invariants are float64",
                )

    # -- RA004 -------------------------------------------------------------
    def _truthiness_target(self, test: ast.AST) -> Optional[str]:
        """Name/call used as a truth value if it is a hot accessor result."""
        node = test
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            node = node.operand
        cn = _call_name(node)
        if cn in _HOT_ACCESSORS:
            return f"{cn}()"
        if isinstance(node, ast.Name) and self._in_scope(self.hot_names, node.id):
            return node.id
        return None

    def _check_guard(self, test: ast.AST) -> None:
        target = self._truthiness_target(test)
        if target is not None:
            self.emit(
                "RA004",
                test,
                f"truthiness test on {target}; hot-path guards must compare "
                "`is None` / `is not None`",
            )
        if isinstance(test, ast.BoolOp):
            for v in test.values:
                self._check_guard(v)
        if isinstance(test, ast.Compare):
            # `x == None` defeats the identity contract too
            if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in test.ops) and any(
                isinstance(c, ast.Constant) and c.value is None
                for c in list(test.comparators) + [test.left]
            ):
                left = test.left
                cn = _call_name(left)
                if cn in _HOT_ACCESSORS or (
                    isinstance(left, ast.Name) and self._in_scope(self.hot_names, left.id)
                ):
                    self.emit(
                        "RA004",
                        test,
                        "equality comparison with None on a hot-path guard; use "
                        "`is None` / `is not None`",
                    )

    def visit_If(self, node: ast.If) -> None:
        self._check_guard(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_guard(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_guard(node.test)
        self.generic_visit(node)

    # -- RA005 -------------------------------------------------------------
    def _check_config_class(self, node: ast.ClassDef) -> None:
        if node.name not in CONFIG_CLASSES:
            return
        frozen = False
        is_dataclass = False
        for dec in node.decorator_list:
            name = None
            if isinstance(dec, ast.Name):
                name = dec.id
            elif isinstance(dec, ast.Attribute):
                name = dec.attr
            elif isinstance(dec, ast.Call):
                name = _call_name(dec)
                if name == "dataclass":
                    for kw in dec.keywords:
                        if (
                            kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            frozen = True
            if name == "dataclass":
                is_dataclass = True
        if not is_dataclass or not frozen:
            self.emit(
                "RA005",
                node,
                f"config class {node.name!r} must be @dataclass(frozen=True) so "
                "core.digest flattens exactly its declared fields",
            )
        declared = {
            t.target.id
            for t in node.body
            if isinstance(t, ast.AnnAssign) and isinstance(t.target, ast.Name)
        }
        for sub in ast.walk(node):
            if isinstance(sub, ast.FunctionDef):
                for stmt in ast.walk(sub):
                    if isinstance(stmt, ast.Assign):
                        for tgt in stmt.targets:
                            if (
                                isinstance(tgt, ast.Attribute)
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id == "self"
                                and tgt.attr not in declared
                            ):
                                self.emit(
                                    "RA005",
                                    stmt,
                                    f"{node.name}.{tgt.attr} assigned outside the "
                                    "declared dataclass fields; it would escape the "
                                    "config digest",
                                )


def lint_source(
    source: str, path: str = "<string>", rules: Optional[Iterable[str]] = None
) -> List[LintFinding]:
    """Lint one source text; ``path`` labels the findings."""
    enabled = set(rules) if rules is not None else set(RULES)
    unknown = enabled - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rule(s): {sorted(unknown)}")
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, enabled)
    linter.visit(tree)
    return linter.findings


def lint_file(path: Path, rules: Optional[Iterable[str]] = None, root: Optional[Path] = None) -> List[LintFinding]:
    rel = str(path.relative_to(root)) if root is not None else str(path)
    return lint_source(path.read_text(encoding="utf-8"), rel, rules)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Optional[Iterable[str]] = None,
    root: Optional[str | Path] = None,
) -> List[LintFinding]:
    """Lint files and/or directories (``*.py``, recursively, sorted).

    ``root`` relativizes the reported paths so baseline keys are stable
    across checkouts; it defaults to the current working directory when
    every path lies under it.
    """
    root_path = Path(root).resolve() if root is not None else Path.cwd().resolve()
    findings: List[LintFinding] = []
    for p in paths:
        path = Path(p).resolve()
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for f in files:
            try:
                rel_root: Optional[Path] = root_path
                f.relative_to(root_path)
            except ValueError:
                rel_root = None
            findings.extend(lint_file(f, rules, rel_root))
    findings.sort(key=lambda x: (x.path, x.line, x.col, x.rule))
    return findings
