"""Static forward rounding-error certification of reduction schedules.

The race and bank certifiers prove a schedule *executes* correctly; this
module proves how far its *arithmetic* can drift.  It walks the reduction
tree a schedule implies — the rank-``kc`` GEMM panel loop, the microtile
reduce plan, the tx-order intra-CTA sum, the atomic or two-pass inter-CTA
commit, and the accumulator dtype — and composes a Higham-style forward
error bound level by level:

* a length-``n`` summation in precision ``u`` satisfies
  ``|fl(sum x) - sum x| <= gamma(n-1, u) * sum |x|`` with
  ``gamma(n, u) = n*u / (1 - n*u)`` (Higham, *Accuracy and Stability of
  Numerical Algorithms*, 2nd ed., Lemma 3.1/eq. 4.4); a dot product of
  length ``n`` takes ``gamma(n, u)``;
* the squared distance assembled as ``||a||^2 + ||b||^2 - 2 a.b`` from
  float64-accumulated norms and the panel-looped GEMM inherits the sum of
  those bounds plus the 3-op assembly rounding;
* the kernel evaluation is a pointwise Lipschitz map of the squared
  distance, so distance error enters through the kernel's Lipschitz
  constant and the evaluation itself adds ``eval_ops`` rounded operations
  on a value of magnitude at most ``kmax``;
* every summation level multiplies weighted kernel values whose magnitude
  is at most ``kmax * |w_j|``, so the whole reduction tree contributes
  ``gamma(n_ops, u_acc) * kmax * sum|w|``.

The headline quantity is ``coeff_q``: the certified bound is

    ``max_i |V_hat[i] - V[i]| <= coeff_q * sum_j |w_j|``

— deliberately the same normalization as :func:`repro.fast.accuracy.
max_rel_error` and the fast engine's ``eps * sum|w|`` contract, so bounds
compose across subsystems.  ``ulps = coeff_q / u_data`` expresses the bound
in units of the data dtype's roundoff; certification compares it against a
configurable ulp budget and additionally rejects *structural* violations
(an accumulator narrower than the data, an uncompensated two-pass commit)
regardless of budget.

Certificates are emitted as machine-readable ``repro-fpcert/v1`` payloads;
``repro analyze fpcert --json`` and the ``fpcert-smoke`` CI job surface
them, ``repro.tune.certify`` gates every autotuner winner on them, and
``repro.core.fused`` derives its ABFT checksum tolerances from the same
gamma calculus (:func:`abft_tolerances`) instead of ad-hoc constants.

The bounds here are *worst case* — every rounding at maximum magnitude and
aligned sign.  The empirical harness (``benchmarks/bench_fpcert.py``)
checks measured error never exceeds them; typical headroom is three to
four orders of magnitude, which is exactly what a certificate should look
like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fused import microtile_reduce_plan
from ..core.problem import PAPER_K_VALUES, PAPER_N, ProblemSpec
from ..core.tiling import PAPER_TILING, TilingConfig

__all__ = [
    "AbftTolerances",
    "DEFAULT_ULP_BUDGET",
    "FPCERT_SCHEMA",
    "FpCertificate",
    "KERNEL_NUMERICS",
    "KernelNumerics",
    "abft_tolerances",
    "certify_fast_contract",
    "certify_paper_accuracy",
    "certify_schedule",
    "gamma",
    "narrowed_accumulator_certificate",
    "paper_schedules",
    "reduce_plan_ops",
    "uncompensated_two_pass_certificate",
    "unit_roundoff",
]

FPCERT_SCHEMA = "repro-fpcert/v1"

#: Default certification budget, in ulps of the data dtype.  Generous on
#: purpose: the paper tilings land around 1e5 ulps in fp32 at K=256, real
#: accuracy bugs (a narrowed accumulator) land around 1e13 — the budget
#: separates regimes, it does not grade healthy schedules.
DEFAULT_ULP_BUDGET = 1.0e8

#: Structural violation tags (checked independently of the ulp budget).
VIOLATION_NARROWED = "narrowed-accumulator"
VIOLATION_UNCOMPENSATED = "uncompensated-two-pass"

_ROUNDOFF = {"float32": 2.0**-24, "float64": 2.0**-53}


def unit_roundoff(dtype: str) -> float:
    """Unit roundoff u of an IEEE dtype name (fp32: 2^-24, fp64: 2^-53)."""
    name = str(np.dtype(dtype))
    if name not in _ROUNDOFF:
        raise ValueError(f"no roundoff model for dtype {name!r}")
    return _ROUNDOFF[name]


def gamma(n: int, u: float) -> float:
    """Higham's gamma_n(u) = n*u / (1 - n*u); the n-rounding error factor.

    Raises if ``n*u >= 1`` — the bound is vacuous there (the analysis has
    left the regime where first-order rounding accumulation makes sense).
    """
    if n < 0:
        raise ValueError("gamma takes a non-negative operation count")
    nu = n * u
    if nu >= 1.0:
        raise ValueError(f"gamma({n}, {u}) diverges: n*u = {nu} >= 1")
    return nu / (1.0 - nu)


# ---------------------------------------------------------------------------
# kernel numerics registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelNumerics:
    """Analytic facts the error analysis needs about one kernel.

    ``kmax(h)`` bounds ``|k(d)|`` over squared distances ``d >= 0``;
    ``lipschitz_sq(h)`` bounds ``|dk/dd|`` — the sensitivity to squared-
    distance error (not to distance error); ``eval_ops`` counts rounded
    floating-point operations in the evaluation body
    (:mod:`repro.core.kernels` in-place forms, including the clamp).
    """

    name: str
    kmax: Callable[[float], float]
    lipschitz_sq: Callable[[float], float]
    eval_ops: int

    def describe(self, h: float) -> str:
        return (
            f"{self.name}: |k| <= {self.kmax(h):.3g}, "
            f"|dk/d(d^2)| <= {self.lipschitz_sq(h):.3g}, "
            f"{self.eval_ops} rounded eval ops (h={h:g})"
        )


#: Per-kernel bounds, each derivable in two lines from repro.core.kernels:
#:
#: * gaussian  k = exp(-d/2h^2):        kmax = 1,  |k'| = k/(2h^2) <= 1/(2h^2)
#: * laplace   k = 1/sqrt(d + h^2):     kmax = 1/h, |k'| = k^3/2 <= 1/(2h^3)
#: * polynomial k = 1/(1 + d/h^2):      kmax = 1,  |k'| = k^2/h^2 <= 1/h^2
#: * matern32  k = (1+c r) e^{-c r},
#:   r = sqrt(d)/h, c = sqrt(3):        kmax = 1,
#:   dk/dd = -(c^2/(2h^2)) e^{-c r} so  |k'| <= 3/(2h^2)
KERNEL_NUMERICS: Dict[str, KernelNumerics] = {
    "gaussian": KernelNumerics(
        "gaussian",
        kmax=lambda h: 1.0,
        lipschitz_sq=lambda h: 1.0 / (2.0 * h * h),
        eval_ops=4,
    ),
    "laplace": KernelNumerics(
        "laplace",
        kmax=lambda h: 1.0 / h,
        lipschitz_sq=lambda h: 1.0 / (2.0 * h * h * h),
        eval_ops=4,
    ),
    "polynomial": KernelNumerics(
        "polynomial",
        kmax=lambda h: 1.0,
        lipschitz_sq=lambda h: 1.0 / (h * h),
        eval_ops=4,
    ),
    "matern32": KernelNumerics(
        "matern32",
        kmax=lambda h: 1.0,
        lipschitz_sq=lambda h: 3.0 / (2.0 * h * h),
        eval_ops=8,
    ),
}


def reduce_plan_ops(plan: str, micro_n: int) -> int:
    """Rounded additions in one microtile row-sum under ``plan``.

    ``tree8`` is the probed pairwise tree (3 levels of adds on 8 lanes:
    7 additions but only depth-3 error growth; the sequential worst case
    of 7 is used for ``seq``/``sum`` — pairwise never exceeds sequential,
    so charging the count keeps the bound valid for both shapes).
    """
    if micro_n < 1:
        raise ValueError("micro_n must be positive")
    if plan == "copy":
        return 0
    if plan == "tree8":
        return 3
    if plan in ("seq", "sum"):
        return micro_n - 1
    raise ValueError(f"unknown microtile reduce plan {plan!r}")


# ---------------------------------------------------------------------------
# the certificate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FpCertificate:
    """One ``repro-fpcert/v1`` certificate for one schedule on one problem."""

    kernel: str
    data_dtype: str
    acc_dtype: str
    reduction: str
    compensated: bool
    tiling: Dict[str, Any]
    problem: Dict[str, Any]
    levels: Dict[str, Any]
    coeff_q: float
    ulps: float
    ulp_budget: float
    violations: Tuple[str, ...]

    @property
    def certified(self) -> bool:
        """No structural violation and the bound fits the ulp budget."""
        return not self.violations and self.ulps <= self.ulp_budget

    def bound_for(self, weight_l1: float) -> float:
        """Absolute bound on ``max_i |V_hat[i] - V[i]`` for ``sum|w|``."""
        return self.coeff_q * float(weight_l1)

    def describe(self) -> str:
        verdict = "certified" if self.certified else "REJECTED"
        why = f" ({', '.join(self.violations)})" if self.violations else ""
        return (
            f"{self.kernel} {self.data_dtype}"
            f"{'/acc-' + self.acc_dtype if self.acc_dtype != self.data_dtype else ''}"
            f" K={self.problem['K']} {self.reduction}"
            f"{'' if self.compensated else ' uncompensated'}: "
            f"|V_hat - V| <= {self.coeff_q:.3e} * sum|w| "
            f"({self.ulps:.3g} ulps vs budget {self.ulp_budget:.3g}) "
            f"-> {verdict}{why}"
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": FPCERT_SCHEMA,
            "kernel": self.kernel,
            "data_dtype": self.data_dtype,
            "acc_dtype": self.acc_dtype,
            "reduction": self.reduction,
            "compensated": self.compensated,
            "tiling": dict(self.tiling),
            "problem": dict(self.problem),
            "levels": dict(self.levels),
            "coeff_q": self.coeff_q,
            "ulps": self.ulps,
            "ulp_budget": self.ulp_budget,
            "violations": list(self.violations),
            "certified": self.certified,
        }


def certify_schedule(
    tiling: TilingConfig,
    spec: ProblemSpec,
    *,
    reduction: str = "atomic",
    compensated: bool = True,
    acc_dtype: Optional[str] = None,
    ulp_budget: float = DEFAULT_ULP_BUDGET,
    point_scale: float = 1.0,
) -> FpCertificate:
    """Walk the reduction tree of one schedule and bound its forward error.

    ``acc_dtype`` is the dtype every summation level accumulates in
    (``None``: the data dtype, which is what both execution engines do);
    ``compensated`` states whether a two-pass inter-CTA commit sums its
    per-CTA partials with compensation (error-free up to the final two
    roundings) or drops it.  ``point_scale`` is the coordinate box edge of
    :func:`repro.core.problem.generate` — it scales the squared-distance
    magnitudes the GEMM level sees.
    """
    if reduction not in ("atomic", "two-pass"):
        raise ValueError(f"unknown reduction strategy {reduction!r}")
    if spec.kernel not in KERNEL_NUMERICS:
        raise ValueError(
            f"no numerics model for kernel {spec.kernel!r}; "
            f"known: {sorted(KERNEL_NUMERICS)}"
        )
    if ulp_budget <= 0:
        raise ValueError("ulp_budget must be positive")
    if point_scale <= 0:
        raise ValueError("point_scale must be positive")

    data_dtype = str(spec.np_dtype)
    acc_name = str(np.dtype(acc_dtype)) if acc_dtype is not None else data_dtype
    u_data = unit_roundoff(data_dtype)
    u_acc = unit_roundoff(acc_name)
    u64 = _ROUNDOFF["float64"]
    numerics = KERNEL_NUMERICS[spec.kernel]

    K = spec.K
    k_iters = tiling.k_iterations(K)
    grid_x, _ = tiling.grid(spec.M, spec.N)

    # -- level 1: squared distance d = ||a||^2 + ||b||^2 - 2 a.b ------------
    # Coordinates live in [0, point_scale)^K, so every norm and every dot
    # product is bounded by radius2 = K * point_scale^2.
    radius2 = K * point_scale * point_scale
    # Norms: float64 einsum (K products + K-1 adds <= gamma(K, u64)), then
    # one rounding on the cast back to the data dtype.
    norm_err = (gamma(K, u64) + u_data) * radius2
    # Dot product: the panel loop performs K products and K-1 in-panel adds
    # plus k_iters - 1 panel-merge adds in the accumulator dtype; charging
    # gamma(K + k_iters, u_acc) covers any BLAS-internal ordering too.
    dot_err = gamma(K + k_iters, u_acc) * radius2
    # Assembly: the *2 is exact; the two adds and one subtract round values
    # of magnitude at most 4 * radius2 in the data dtype.
    assemble_err = gamma(3, u_data) * 4.0 * radius2
    delta_d = 2.0 * norm_err + 2.0 * dot_err + assemble_err

    # -- level 2: pointwise kernel evaluation --------------------------------
    lipschitz = numerics.lipschitz_sq(spec.h)
    kmax = numerics.kmax(spec.h)
    # eval_ops roundings on intermediates of magnitude <= kmax; the factor
    # 2 is first-order slack for growth through the evaluation chain.
    eval_err = 2.0 * numerics.eval_ops * u_data * kmax
    kernel_err = lipschitz * delta_d + eval_err

    # -- level 3: the reduction tree -----------------------------------------
    plan = microtile_reduce_plan(tiling.micro_n, np.dtype(acc_name))
    micro_ops = reduce_plan_ops(plan, tiling.micro_n)
    intra_cta_ops = tiling.block_dim_x - 1
    if reduction == "two-pass" and compensated:
        # compensated two-pass: partials merge error-free up to the final
        # rounding of the sum and of the compensation term
        inter_cta_ops = 2
    else:
        # atomicAdd commits in hardware-arbitrary order; a plain two-pass
        # sum is sequential — both are bounded by the full chain length
        inter_cta_ops = max(grid_x - 1, 0)
    # one rounding for the weight multiply, then every addition level
    sum_ops = 1 + micro_ops + intra_cta_ops + inter_cta_ops
    sum_err_coeff = gamma(sum_ops, u_acc) * kmax

    # Each term |k_ij w_j| <= kmax |w_j|, so both the kernel-value error
    # (per term, times |w_j|) and the summation rounding normalize by
    # Q = sum|w|:   |V_hat_i - V_i| <= coeff_q * Q.
    coeff_q = kernel_err + sum_err_coeff
    ulps = coeff_q / u_data

    violations: List[str] = []
    if u_acc > u_data:
        violations.append(VIOLATION_NARROWED)
    if reduction == "two-pass" and not compensated:
        violations.append(VIOLATION_UNCOMPENSATED)

    return FpCertificate(
        kernel=spec.kernel,
        data_dtype=data_dtype,
        acc_dtype=acc_name,
        reduction=reduction,
        compensated=compensated,
        tiling={
            "mc": tiling.mc,
            "nc": tiling.nc,
            "kc": tiling.kc,
            "block_dim_x": tiling.block_dim_x,
            "block_dim_y": tiling.block_dim_y,
            "micro_m": tiling.micro_m,
            "micro_n": tiling.micro_n,
            "double_buffered": tiling.double_buffered,
        },
        problem={
            "M": spec.M,
            "N": spec.N,
            "K": spec.K,
            "h": spec.h,
            "point_scale": point_scale,
            "grid_x": grid_x,
            "k_iterations": k_iters,
        },
        levels={
            "distance": {
                "radius2": radius2,
                "norm_err": norm_err,
                "dot_err": dot_err,
                "assemble_err": assemble_err,
                "delta_d": delta_d,
            },
            "kernel": {
                "lipschitz_sq": lipschitz,
                "kmax": kmax,
                "eval_ops": numerics.eval_ops,
                "eval_err": eval_err,
                "bound": kernel_err,
            },
            "reduction": {
                "microtile_plan": plan,
                "microtile_ops": micro_ops,
                "intra_cta_ops": intra_cta_ops,
                "inter_cta_ops": inter_cta_ops,
                "sum_ops": sum_ops,
                "bound": sum_err_coeff,
            },
        },
        coeff_q=coeff_q,
        ulps=ulps,
        ulp_budget=ulp_budget,
        violations=tuple(violations),
    )


# ---------------------------------------------------------------------------
# paper-schedule sweep + negative controls
# ---------------------------------------------------------------------------


def paper_schedules() -> List[Tuple[str, TilingConfig, str, bool]]:
    """The ablation-bench schedule set: (name, tiling, reduction, compensated).

    Mirrors the points the paper and the perf benches exercise: the design
    point, single buffering, the 4x4 microtile, the kc sweep, and the
    two-pass epilogue.
    """
    return [
        ("paper-atomic", PAPER_TILING, "atomic", True),
        ("single-buffered", TilingConfig(double_buffered=False), "atomic", True),
        ("micro4x4", TilingConfig(block_dim_x=32, block_dim_y=32), "atomic", True),
        ("kc4", TilingConfig(kc=4), "atomic", True),
        ("kc16", TilingConfig(kc=16), "atomic", True),
        ("paper-two-pass", PAPER_TILING, "two-pass", True),
    ]


def certify_paper_accuracy(
    k_values: Sequence[int] = PAPER_K_VALUES,
    *,
    M: int = PAPER_N,
    N: int = PAPER_N,
    dtype: str = "float32",
    kernel: str = "gaussian",
    h: float = 1.0,
    ulp_budget: float = DEFAULT_ULP_BUDGET,
) -> List[Dict[str, Any]]:
    """Certify every paper schedule at every requested K.

    Returns one entry per (schedule, K) with the schedule name attached —
    the shape the CLI verb, the CI smoke job, and the empirical harness
    all consume.
    """
    out: List[Dict[str, Any]] = []
    for name, tiling, reduction, compensated in paper_schedules():
        for K in k_values:
            spec = ProblemSpec(M=M, N=N, K=int(K), h=h, kernel=kernel, dtype=dtype)
            cert = certify_schedule(
                tiling, spec,
                reduction=reduction, compensated=compensated,
                ulp_budget=ulp_budget,
            )
            payload = cert.to_payload()
            payload["schedule"] = name
            out.append(payload)
    return out


def narrowed_accumulator_certificate(
    ulp_budget: float = DEFAULT_ULP_BUDGET,
) -> FpCertificate:
    """Negative control: float64 data accumulated in a float32 register file.

    Structurally violating (the accumulator is narrower than the data) and
    quantitatively hopeless (~1e13 ulps of float64) — CI asserts this
    certificate is rejected on both grounds.
    """
    spec = ProblemSpec(M=PAPER_N, N=PAPER_N, K=128, dtype="float64")
    return certify_schedule(
        PAPER_TILING, spec, acc_dtype="float32", ulp_budget=ulp_budget
    )


def uncompensated_two_pass_certificate(
    ulp_budget: float = DEFAULT_ULP_BUDGET,
) -> FpCertificate:
    """Negative control: a two-pass commit with the compensation dropped.

    The two-pass epilogue's whole claim is the deterministic, compensated
    partial merge; dropping the compensation silently reverts to a long
    sequential chain.  The certifier must flag it structurally even though
    the quantitative bound may still fit the budget.
    """
    spec = ProblemSpec(M=PAPER_N, N=PAPER_N, K=128, dtype="float32")
    return certify_schedule(
        PAPER_TILING, spec,
        reduction="two-pass", compensated=False, ulp_budget=ulp_budget,
    )


# ---------------------------------------------------------------------------
# fast-engine contract composition
# ---------------------------------------------------------------------------


def certify_fast_contract(
    spec: ProblemSpec,
    eps: float,
    tiling: TilingConfig = PAPER_TILING,
) -> Dict[str, Any]:
    """Statically verify the fast engine's ``eps * sum|w|`` contract composes.

    The FGT/treecode engine promises ``|V - V_dense| <= eps * Q`` against
    the *dense* result, and runs the dense batched engine as its near-field
    primitive.  Composing with the dense certificate gives the true-value
    bound ``|V - V_true| <= (eps + dense_coeff_q) * Q`` (plus one rounding
    for the far/near merge).  The contract "composes" when the dense term
    does not dominate the advertised eps — otherwise eps is marketing, not
    a bound.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    dense = certify_schedule(tiling, spec)
    u_data = unit_roundoff(dense.data_dtype)
    composed = eps + dense.coeff_q + u_data
    return {
        "schema": FPCERT_SCHEMA,
        "kind": "fast-contract",
        "eps": eps,
        "dense_coeff_q": dense.coeff_q,
        "composed_coeff_q": composed,
        "composes": dense.coeff_q <= eps,
        "dense": dense.to_payload(),
    }


# ---------------------------------------------------------------------------
# derived ABFT tolerances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbftTolerances:
    """Certified relative checksum tolerances for the fused ABFT layer.

    ``gemm_rtol`` gates ``|e^T subC - sum_p (e^T A_p) B_p|`` against the
    column's absolute mass; ``reduce_rtol`` gates the weighted kernel-mass
    checksum against the committed partial sum.  Both predictions start
    from the *same rounded operands* the compute consumed, so kernel and
    distance error cancel — only the differing reduction arithmetic (data-
    dtype compute vs float64 prediction) can separate them.
    """

    gemm_rtol: float
    reduce_rtol: float
    headroom: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "gemm_rtol": self.gemm_rtol,
            "reduce_rtol": self.reduce_rtol,
            "headroom": self.headroom,
        }


def abft_tolerances(
    dtype: str,
    K: int,
    tiling: TilingConfig = PAPER_TILING,
    headroom: float = 4.0,
) -> AbftTolerances:
    """Derive the fused ABFT checksum tolerances from the gamma calculus.

    GEMM check: the compute-side column sum accumulates K products over
    k_iters panels in the data dtype, then mc column entries in float64;
    the prediction accumulates the same K products in float64.  Worst-case
    relative separation against the absolute column mass is
    ``gamma(K + k_iters, u) + gamma(K + mc + k_iters, u64)``.

    Reduction check: the committed partial performs the weight multiply,
    the microtile plan, and the tx-order chain in the data dtype; the
    float64 prediction sums all mc*nc weighted kernel values plus the
    mc-element commit readback.  ``headroom`` (default 4x) absorbs the
    difference between worst-case sign alignment and anything a healthy
    run can produce — derived, not tuned: no clean run can trip it.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    u = unit_roundoff(dtype)
    u64 = _ROUNDOFF["float64"]
    k_iters = tiling.k_iterations(K)
    gemm_rtol = headroom * (
        gamma(K + k_iters, u) + gamma(K + tiling.mc + k_iters, u64)
    )
    plan = microtile_reduce_plan(tiling.micro_n, np.dtype(dtype))
    n_intra = 1 + reduce_plan_ops(plan, tiling.micro_n) + (tiling.block_dim_x - 1)
    reduce_rtol = headroom * (
        gamma(n_intra, u) + gamma(tiling.mc * tiling.nc + tiling.mc, u64)
    )
    return AbftTolerances(
        gemm_rtol=gemm_rtol, reduce_rtol=reduce_rtol, headroom=headroom
    )
