"""Committed-baseline bookkeeping for the lint gate.

The CI ``analysis`` job fails on any *new* violation while tolerating the
(ideally empty) set of findings that were reviewed and accepted when the
gate was introduced.  Accepted findings live in a committed JSON file as
stable keys (``rule:path:context`` — see
:attr:`repro.analysis.lint.LintFinding.key`), so unrelated line-number
churn does not invalidate the baseline, while moving a violation to a new
function or file does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set, Union

from .lint import LintFinding

__all__ = ["BASELINE_SCHEMA", "load_baseline", "save_baseline", "new_findings"]

BASELINE_SCHEMA = "repro-analysis-baseline/v1"


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """Accepted finding keys from a baseline file (missing file = empty)."""
    p = Path(path)
    if not p.exists():
        return set()
    doc = json.loads(p.read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{p}: expected schema {BASELINE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    accepted = doc.get("accepted", [])
    if not isinstance(accepted, list) or not all(isinstance(k, str) for k in accepted):
        raise ValueError(f"{p}: 'accepted' must be a list of finding keys")
    return set(accepted)


def save_baseline(path: Union[str, Path], findings: Sequence[LintFinding]) -> Dict[str, object]:
    """Write the current findings as the accepted baseline; returns the doc."""
    doc: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "accepted": sorted({f.key for f in findings}),
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return doc


def new_findings(
    findings: Sequence[LintFinding], baseline: Set[str]
) -> List[LintFinding]:
    """Findings whose keys are not in the accepted baseline."""
    return [f for f in findings if f.key not in baseline]
