"""Bank-conflict certification of the Fig.-5 shared-memory mapping.

The paper's Fig. 5 claims two static properties of the optimized tile
layout: every STS of the staging phase and every LDS of the compute phase
is serviced in a single transaction per warp (replay factor 0).  The
:mod:`repro.core.mapping` audits verify the *totals*; this module instead
enumerates **every individual warp instruction** — 4 loader warps x ``kc``
store phases, and 8 compute warps x ``kc`` k-steps x 8 load instructions
per tile — computes its per-warp bank occupancy with
:func:`repro.gpu.sharedmem.warp_transactions`, and emits a
machine-readable :class:`BankCertificate` recording the replay factor of
each instruction.

A certificate with ``max_replay == 0`` *proves* the Fig.-5 claim for that
``(layout, kc)`` mapping under the Maxwell banking rules the simulator
implements.  :func:`certify_tiling` adapts the certifier to an arbitrary
:class:`~repro.core.tiling.TilingConfig` so
:func:`repro.core.autotune.rank_tilings` can reject conflicting mappings
before spending any simulation on them; tilings the Fig.-5 mapping does
not cover (non-128-point tiles, non-16x16 blocks) return ``None`` —
"not applicable" rather than "certified".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.mapping import TrackAssignment, compute_load_addresses, store_assignment
from ..core.tiling import TilingConfig
from ..gpu.sharedmem import warp_transactions

__all__ = [
    "InstructionReport",
    "BankCertificate",
    "certify_mapping",
    "certify_tiling",
]

#: Shape constants of the Fig.-5 mapping: 128-point tiles staged by four
#: 32-lane loader warps, consumed by a 16 x 16 compute block.
_POINTS = 128
_LOADER_WARPS = 4
_BLOCK = (16, 16)

CERTIFICATE_SCHEMA = "repro-bank-certificate/v1"

StoreFn = Callable[[int, str, int], TrackAssignment]
LoadFn = Callable[[int, int, str, int], np.ndarray]


@dataclass(frozen=True)
class InstructionReport:
    """Bank occupancy of one warp-wide shared-memory instruction."""

    op: str  # "sts" | "lds"
    tile: str  # "A" | "B" | "AB" (stores: both tiles share the pattern)
    warp: int
    phase: int  # store phase (track element) or k-step for loads
    instr: int  # per-element load instruction index (0 for stores)
    transactions: int

    @property
    def replay(self) -> int:
        return self.transactions - 1

    def to_payload(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "tile": self.tile,
            "warp": self.warp,
            "phase": self.phase,
            "instr": self.instr,
            "transactions": self.transactions,
            "replay": self.replay,
        }


@dataclass(frozen=True)
class BankCertificate:
    """Machine-readable proof object for one ``(layout, kc)`` mapping."""

    layout: str
    kc: int
    num_banks: int
    instructions: Tuple[InstructionReport, ...]

    @property
    def max_replay(self) -> int:
        return max((i.replay for i in self.instructions), default=0)

    @property
    def conflict_free(self) -> bool:
        return self.max_replay == 0

    @property
    def max_store_replay(self) -> int:
        return max((i.replay for i in self.instructions if i.op == "sts"), default=0)

    @property
    def max_load_replay(self) -> int:
        return max((i.replay for i in self.instructions if i.op == "lds"), default=0)

    def worst(self) -> Optional[InstructionReport]:
        """The instruction with the highest replay factor, if any conflict."""
        bad = [i for i in self.instructions if i.replay > 0]
        return max(bad, key=lambda i: i.replay) if bad else None

    def describe(self) -> str:
        head = (
            f"layout={self.layout} kc={self.kc}: {len(self.instructions)} warp "
            f"instruction(s), max replay {self.max_replay} "
            f"(sts {self.max_store_replay}, lds {self.max_load_replay})"
        )
        if self.conflict_free:
            return head + " — bank-conflict-free"
        w = self.worst()
        assert w is not None
        return (
            head
            + f" — WORST {w.op} warp {w.warp} phase {w.phase} instr {w.instr}: "
            + f"{w.transactions} transactions"
        )

    def to_payload(self) -> Dict[str, Any]:
        conflicting = [i.to_payload() for i in self.instructions if i.replay > 0]
        return {
            "schema": CERTIFICATE_SCHEMA,
            "layout": self.layout,
            "kc": self.kc,
            "num_banks": self.num_banks,
            "instructions": len(self.instructions),
            "max_replay": self.max_replay,
            "max_store_replay": self.max_store_replay,
            "max_load_replay": self.max_load_replay,
            "conflict_free": self.conflict_free,
            "conflicting": conflicting,
        }


def certify_mapping(
    layout: str = "optimized",
    kc: int = 8,
    num_banks: int = 32,
    store_fn: Optional[StoreFn] = None,
    load_fn: Optional[LoadFn] = None,
) -> BankCertificate:
    """Per-instruction bank certificate for one tile mapping.

    ``store_fn``/``load_fn`` default to the real
    :func:`repro.core.mapping.store_assignment` /
    :func:`~repro.core.mapping.compute_load_addresses`; tests substitute
    seeded mutants to prove the certifier catches broken mappings.
    Raises ``ValueError`` when the mapping is undefined for ``kc`` (the
    address functions refuse out-of-range points), so callers can treat
    "not expressible" separately from "conflicting".
    """
    sfn: StoreFn = store_fn if store_fn is not None else store_assignment
    lfn: LoadFn = load_fn if load_fn is not None else compute_load_addresses
    reports: List[InstructionReport] = []

    # Staging STS: four loader warps, one store instruction per track
    # element.  Both tile halves use the same (warp, lane) -> address
    # pattern, so one sweep certifies A and B at once.
    for warp in range(_LOADER_WARPS):
        assigns = [sfn(warp * 32 + lane, layout, kc) for lane in range(32)]
        for phase in range(kc):
            addrs = np.array([a.smem_addresses[phase] for a in assigns], dtype=np.int64)
            reports.append(
                InstructionReport(
                    op="sts",
                    tile="AB",
                    warp=warp,
                    phase=phase,
                    instr=0,
                    transactions=warp_transactions(addrs, num_banks),
                )
            )

    # Compute LDS: every warp of the 16 x 16 block, each k-step, each of
    # the 8 per-element load instructions, for both tiles (tileB indexes by
    # tx, tileA by ty — different broadcast structure, both must certify).
    bx, by = _BLOCK
    for warp_start in range(0, bx * by, 32):
        warp = warp_start // 32
        lanes = np.arange(warp_start, warp_start + 32)
        tx, ty = lanes % bx, lanes // bx
        for tile, coord in (("B", tx), ("A", ty)):
            for k_step in range(kc):
                per_lane = np.stack(
                    [lfn(int(c), k_step, layout, kc) for c in coord]
                )  # (32 lanes, 8 elements)
                for instr in range(8):
                    reports.append(
                        InstructionReport(
                            op="lds",
                            tile=tile,
                            warp=warp,
                            phase=k_step,
                            instr=instr,
                            transactions=warp_transactions(per_lane[:, instr], num_banks),
                        )
                    )

    return BankCertificate(
        layout=layout, kc=kc, num_banks=num_banks, instructions=tuple(reports)
    )


def certify_tiling(
    tiling: TilingConfig, layout: str = "optimized", num_banks: int = 32
) -> Optional[BankCertificate]:
    """Certificate for a :class:`TilingConfig`, or ``None`` if inapplicable.

    The Fig.-5 mapping is defined for 128 x 128 CTA tiles staged by a
    16 x 16 block; other shapes return ``None`` (the mapping simply does
    not describe their staging), as does any ``kc`` for which the address
    functions refuse to produce a full schedule.  Callers rejecting
    candidates must therefore distinguish ``None`` (no claim) from a
    certificate with conflicts (a disproved claim).
    """
    if (tiling.mc, tiling.nc) != (_POINTS, _POINTS):
        return None
    if (tiling.block_dim_x, tiling.block_dim_y) != _BLOCK:
        return None
    try:
        return certify_mapping(layout=layout, kc=tiling.kc, num_banks=num_banks)
    except ValueError:
        return None
