"""Static analysis of the repository's kernels and invariants.

Four analyzers, one subsystem (see docs/ANALYSIS.md):

* :mod:`repro.analysis.races` — GPUVerify-style barrier-interval race
  detection over symbolic SIMT token streams
  (:mod:`repro.analysis.trace`): proves the fused kernel's double-buffered
  staging free of shared-memory races for every paper configuration, and
  catches seeded missing-barrier mutants with file/line witnesses.
* :mod:`repro.analysis.banks` — per-instruction bank-conflict
  certification of the Fig.-5 thread↔track mapping; emits a
  machine-readable :class:`~repro.analysis.banks.BankCertificate` that
  :func:`repro.core.autotune.rank_tilings` can use to reject conflicting
  mappings before simulation.
* :mod:`repro.analysis.lint` — AST rules for the determinism and
  hot-path invariants prior PRs established (no unordered-set iteration in
  deterministic paths, float64-only ABFT checksums, ``is None`` hook
  guards, frozen config dataclasses), gated against a committed baseline
  (:mod:`repro.analysis.baseline`).
* :mod:`repro.analysis.fpcert` — forward rounding-error certification of
  reduction schedules: walks the reduction tree a schedule implies and
  emits a machine-readable ``repro-fpcert/v1`` bound
  ``|V_hat - V| <= coeff_q * sum|w|``, gating autotuner winners, the fast
  engine's eps contract, and the fused ABFT tolerances.

``repro analyze [race|banks|lint|fpcert|all] --json`` exposes all four;
the seeded negative controls live in :mod:`repro.analysis.mutants`.
"""

from .banks import BankCertificate, InstructionReport, certify_mapping, certify_tiling
from .baseline import load_baseline, new_findings, save_baseline
from .fpcert import (
    DEFAULT_ULP_BUDGET,
    FPCERT_SCHEMA,
    AbftTolerances,
    FpCertificate,
    abft_tolerances,
    certify_fast_contract,
    certify_paper_accuracy,
    certify_schedule,
    gamma,
    narrowed_accumulator_certificate,
    paper_schedules,
    uncompensated_two_pass_certificate,
    unit_roundoff,
)
from .lint import RULES, LintFinding, lint_paths, lint_source
from .races import (
    PAPER_K_VALUES,
    RaceReport,
    RaceViolation,
    certify_paper_kernels,
    detect_races,
)
from .schedules import certify_schedule_races, generic_schedule_kernel
from .trace import AccessEvent, IntervalAccesses, KernelTrace, trace_kernel

__all__ = [
    "AbftTolerances",
    "AccessEvent",
    "BankCertificate",
    "DEFAULT_ULP_BUDGET",
    "FPCERT_SCHEMA",
    "FpCertificate",
    "InstructionReport",
    "IntervalAccesses",
    "KernelTrace",
    "LintFinding",
    "PAPER_K_VALUES",
    "RULES",
    "RaceReport",
    "RaceViolation",
    "abft_tolerances",
    "certify_fast_contract",
    "certify_mapping",
    "certify_paper_accuracy",
    "certify_paper_kernels",
    "certify_schedule",
    "certify_schedule_races",
    "certify_tiling",
    "detect_races",
    "gamma",
    "generic_schedule_kernel",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "narrowed_accumulator_certificate",
    "new_findings",
    "paper_schedules",
    "save_baseline",
    "trace_kernel",
    "uncompensated_two_pass_certificate",
    "unit_roundoff",
]
