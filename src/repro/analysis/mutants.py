"""Seeded buggy kernel variants the analyzers must catch.

These are *negative controls*: deliberately broken copies of the paper's
kernels that exercise the two failure classes the static analyzers exist
to rule out.  Tests (and the CI gate's self-check) run the analyzers
against them and demand a violation — an analyzer that certifies a mutant
is itself broken.

* :func:`stage_tile_missing_barrier_kernel` — the Fig.-5 staging kernel
  with the ``__syncthreads`` between staging and compute deleted: the
  compute phase's LDS now share a barrier interval with the staging STS,
  a textbook read-write race.
* :func:`double_buffered_missing_barrier_kernel` — Algorithm 2's panel
  loop with the per-iteration barrier (line 11) deleted: iteration
  ``i+1``'s staging overwrites the buffer iteration ``i`` is still
  reading from.
* :func:`permuted_store_assignment` — the Fig.-5 thread↔track mapping
  with the track shuffle dropped: each loader thread fetches its *naive*
  track (point = loader index) but stores into the optimized 32 x 2
  microtile layout, concentrating every warp's stores into 8 banks
  (4-way conflicts) instead of spreading them across all 32.
* :data:`BLOCKING_ASYNC_MUTANT_SOURCE` — a dispatcher coroutine in the
  shape of :mod:`repro.serve`'s, but with the executor offload deleted:
  it sleeps and does file I/O directly on the event loop.  The RA006
  lint rule must flag both calls.
* :data:`LEAKY_SPAN_MUTANT_SOURCE` — a request handler in the shape of
  :mod:`repro.serve.server`'s, but holding its tracer spans as plain
  values instead of ``with`` blocks: the admit span is closed by hand
  (skipped whenever ``admit`` raises) and the resolve span is never
  closed at all.  The RA007 lint rule must flag both ``span()`` calls
  when the source is linted under a ``serve/`` path.
* :data:`NARROWED_ACCUMULATOR_MUTANT_SOURCE` — a reduction epilogue that
  accumulates float64 partials into a float32 vector, once via ``+=``
  and once via ``np.add(..., out=)``, with no certified reduce plan in
  scope.  The RA008 lint rule must flag both accumulation sites; the
  same narrowing, expressed as a schedule, is what
  :func:`repro.analysis.fpcert.narrowed_accumulator_certificate` must
  certified-reject.
"""

from __future__ import annotations

from typing import Any, Generator, Literal

import numpy as np

from ..core.mapping import (
    TrackAssignment,
    compute_load_addresses,
    optimized_address,
    store_assignment,
)
from ..gpu.simt import ThreadCtx

__all__ = [
    "stage_tile_missing_barrier_kernel",
    "double_buffered_missing_barrier_kernel",
    "permuted_store_assignment",
    "BLOCKING_ASYNC_MUTANT_SOURCE",
    "LEAKY_SPAN_MUTANT_SOURCE",
    "NARROWED_ACCUMULATOR_MUTANT_SOURCE",
]

#: RA006 negative control: an async dispatcher that blocks the event loop.
#: ``time.sleep`` stalls every in-flight request; the direct ``open`` +
#: write is the sync-file-I/O shape the serve journal offloads through
#: ``run_in_executor``.  Lint must produce (at least) two RA006 findings.
BLOCKING_ASYNC_MUTANT_SOURCE = '''\
import time


async def dispatch_batch(queue):
    """Seeded RA006 mutant: does the journal fsync dance on the loop."""
    batch = await queue.get()
    time.sleep(0.002)  # BUG under test: sync sleep inside async def
    with open("requests.wal", "ab") as fh:  # BUG under test: sync file I/O
        fh.write(repr(batch).encode())
    return batch
'''

#: RA007 negative control: a serve-shaped handler that holds spans as
#: values.  The admit span's manual ``__exit__`` is skipped whenever
#: ``admit()`` raises (every shed/deadline path), and the resolve span is
#: simply never closed — both leak and desync the tracer's thread-local
#: nesting stack.  Lint under a ``serve/`` path must flag both calls.
LEAKY_SPAN_MUTANT_SOURCE = '''\
from repro.obs.tracer import span


def handle_solve(admission, engine, request):
    """Seeded RA007 mutant: spans that only close on the happy path."""
    admit_span = span("serve.admit", id=request.id)  # BUG under test: no `with`
    admission.admit(request_id=request.id)
    admit_span.__exit__(None, None, None)
    resolve_span = span("serve.resolve", id=request.id)  # BUG under test: leaks
    return engine.solve(request.spec())
'''

#: RA008 negative control: a reduction epilogue that narrows float64
#: partials into a float32 accumulator — the fp32-narrowed-accumulator
#: failure mode the accuracy certifier's negative control models, written
#: as source.  No enclosing scope is named ``certified``, so lint must
#: flag both accumulation sites (the ``+=`` and the ``np.add(out=)``).
NARROWED_ACCUMULATOR_MUTANT_SOURCE = '''\
import numpy as np


def commit_partials(kernel_block, weights, grid_x):
    """Seeded RA008 mutant: fp32 accumulator fed fp64 partials."""
    acc = np.zeros(kernel_block.shape[0], dtype=np.float32)
    partial = (kernel_block @ weights).astype(np.float64)
    acc += partial  # BUG under test: narrows every float64 partial to fp32
    for bx in range(grid_x):
        chunk = kernel_block[:, bx].astype(np.float64)
        np.add(acc, chunk, out=acc)  # BUG under test: same narrowing via ufunc
    return acc
'''


def stage_tile_missing_barrier_kernel(
    ctx: ThreadCtx,
    tileA: np.ndarray,
    tileB: np.ndarray,
    acc: np.ndarray,
    layout: Literal["optimized", "naive"],
    kc: int,
) -> Generator[Any, Any, None]:
    """:func:`repro.core.simt_kernels.stage_tile_kernel` minus the barrier.

    Identical staging and compute phases, but the block-wide barrier that
    separates them is gone — every compute-phase load races with the
    staging stores of the other threads.
    """
    B_OFF = 128 * kc
    half = ctx.block_dim[0] * ctx.block_dim[1] // 2
    tid = ctx.tid

    if tid < half:
        assign = store_assignment(tid, layout, kc)
        track = tileA[assign.point, :]
        for p in range(kc):
            yield ctx.sts(assign.smem_addresses[p], [track[p]])
    else:
        assign = store_assignment(tid - half, layout, kc)
        track = tileB[:, assign.point]
        for p in range(kc):
            yield ctx.sts(B_OFF + assign.smem_addresses[p], [track[p]])

    # BUG under test: no ctx.barrier() here.

    tx, ty = ctx.tx, ctx.ty
    for k in range(kc):
        a_addrs = compute_load_addresses(ty, k, layout, kc)
        b_addrs = compute_load_addresses(tx, k, layout, kc)
        a_vals = np.empty(8, dtype=np.float32)
        b_vals = np.empty(8, dtype=np.float32)
        for i in range(8):
            a_vals[i] = yield ctx.lds(int(a_addrs[i]))
        for i in range(8):
            b_vals[i] = yield ctx.lds(B_OFF + int(b_addrs[i]))
        acc[8 * ty : 8 * ty + 8, 8 * tx : 8 * tx + 8] += np.outer(a_vals, b_vals)

    yield ctx.barrier()


def double_buffered_missing_barrier_kernel(
    ctx: ThreadCtx,
    tileAs: np.ndarray,
    tileBs: np.ndarray,
    acc: np.ndarray,
    kc: int,
) -> Generator[Any, Any, None]:
    """Algorithm 2's panel loop with the line-11 barrier deleted.

    Without the per-iteration barrier, ``stage(i+1)`` into buffer ``j``
    lands in the same interval as ``compute`` still reading buffer ``j``
    from the *previous* flip — the race double buffering exists to avoid.
    """
    PAIR = 2 * 128 * kc
    B_OFF = 128 * kc
    half = ctx.block_dim[0] * ctx.block_dim[1] // 2
    tid, tx, ty = ctx.tid, ctx.tx, ctx.ty

    def stage(panel: int, buf: int) -> Generator[Any, Any, None]:
        base = buf * PAIR
        if tid < half:
            assign = store_assignment(tid, "optimized", kc)
            track = tileAs[panel, assign.point, :]
            for p in range(kc):
                yield ctx.sts(base + assign.smem_addresses[p], [track[p]])
        else:
            assign = store_assignment(tid - half, "optimized", kc)
            track = tileBs[panel, :, assign.point]
            for p in range(kc):
                yield ctx.sts(base + B_OFF + assign.smem_addresses[p], [track[p]])

    def compute(buf: int) -> Generator[Any, Any, None]:
        base = buf * PAIR
        for k in range(kc):
            a_addrs = compute_load_addresses(ty, k, "optimized", kc)
            b_addrs = compute_load_addresses(tx, k, "optimized", kc)
            a_vals = np.empty(8, dtype=np.float32)
            b_vals = np.empty(8, dtype=np.float32)
            for i in range(8):
                a_vals[i] = yield ctx.lds(base + int(a_addrs[i]))
            for i in range(8):
                b_vals[i] = yield ctx.lds(base + B_OFF + int(b_addrs[i]))
            acc[8 * ty : 8 * ty + 8, 8 * tx : 8 * tx + 8] += np.outer(a_vals, b_vals)

    panels = tileAs.shape[0]
    j = 0
    yield from stage(0, j)
    yield ctx.barrier()
    for i in range(1, panels):
        j ^= 1
        yield from stage(i, j)
        yield from compute(j ^ 1)
        # BUG under test: no ctx.barrier() here (Algorithm 2 line 11).
    yield from compute(j)


def permuted_store_assignment(
    loader_index: int, layout: str = "optimized", kc: int = 8
) -> TrackAssignment:
    """Fig.-5 store schedule with the thread↔track permutation dropped.

    The optimized mapping's whole point is that loader-warp ``w``, lane
    ``l`` fetches track ``(l % 2) + 2w`` of microtile ``l // 2`` so that
    the 32 lanes land in 32 distinct banks.  This mutant keeps the
    optimized *addresses* but pairs threads with tracks naively
    (``point = loader_index``): lanes 0..31 of a warp then write rows of
    only 4 microtiles, i.e. 8 distinct banks — a 4-way store conflict the
    certifier must flag.
    """
    if not 0 <= loader_index < 128:
        raise ValueError("loader_index must lie in [0, 128)")
    microtile, track = divmod(loader_index, kc)
    point = microtile * kc + track
    addresses = tuple(optimized_address(p, point, kc) for p in range(kc))
    return TrackAssignment(loader_index, microtile, track, addresses)
