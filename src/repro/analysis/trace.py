"""Symbolic enumeration of SIMT operation-token streams.

The kernels in :mod:`repro.core.simt_kernels` are Python generators whose
*control flow never depends on loaded data*: the addresses they touch and
the barriers they cross are fully determined by the thread coordinates and
the launch parameters.  That makes them amenable to static analysis by
*symbolic replay*: each thread's generator is advanced to completion with
neutral values fed into every ``yield`` (zeros for ``lds``, the lane's own
contribution for ``shfl``), and the stream of operation tokens it presents
is recorded instead of executed.

The recorded stream is partitioned at ``ctx.barrier()`` tokens into
*barrier intervals* — the synchronization quanta of GPUVerify-style race
analysis: two shared-memory accesses can only conflict if they fall into
the same interval, because ``__syncthreads`` orders everything across
interval boundaries.

:func:`trace_kernel` produces a :class:`KernelTrace` holding, for every
interval, compact NumPy arrays of ``(thread, word address)`` pairs for
loads and stores.  When ``detail_intervals`` is given, per-access
:class:`AccessEvent` records (including the generator's suspended source
line, read from ``gi_frame.f_lineno``) are additionally collected for
those intervals so a violation can be reported with file/line locations.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from ..gpu.simt import ThreadCtx

__all__ = [
    "AccessEvent",
    "IntervalAccesses",
    "KernelTrace",
    "trace_kernel",
]

# Token kind tags, mirroring the tuples built by ThreadCtx.  Kept as local
# literals (rather than importing repro.gpu.simt's private constants) so the
# trace layer documents the protocol it speaks.
_BARRIER = "bar"
_LDS = "lds"
_STS = "sts"
_ATOM = "atom"
_IDLE = "idle"
_SHFL = "shfl"

#: Hard cap on tokens a single thread may present before the tracer declares
#: the kernel non-terminating under symbolic replay.
MAX_TOKENS_PER_THREAD = 2_000_000


@dataclass(frozen=True)
class AccessEvent:
    """One shared-memory access of one thread (detail mode only)."""

    thread: int
    kind: str  # "load" | "store"
    address: int  # first word address
    width: int  # words accessed (1, 2, or 4)
    line: int  # source line of the suspended ``yield``

    def words(self) -> Tuple[int, ...]:
        return tuple(range(self.address, self.address + self.width))


@dataclass
class IntervalAccesses:
    """All shared-memory traffic of one barrier interval, block-wide.

    The four arrays are parallel decompositions: ``read_threads[i]`` issued
    a load of word ``read_addresses[i]`` (wide accesses contribute one entry
    per word), and likewise for stores.  ``events`` is populated only when
    the interval was traced in detail mode.
    """

    index: int
    read_threads: np.ndarray
    read_addresses: np.ndarray
    write_threads: np.ndarray
    write_addresses: np.ndarray
    events: Optional[List[AccessEvent]] = None

    @property
    def reads(self) -> int:
        return int(self.read_addresses.size)

    @property
    def writes(self) -> int:
        return int(self.write_addresses.size)


@dataclass
class KernelTrace:
    """The symbolic execution footprint of one kernel launch."""

    kernel_name: str
    source_file: str
    block_dim: Tuple[int, int]
    warp_size: int
    barrier_counts: List[int]
    intervals: List[IntervalAccesses]
    atomic_ops: int
    shuffle_ops: int

    @property
    def num_threads(self) -> int:
        return self.block_dim[0] * self.block_dim[1]

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def barriers_aligned(self) -> bool:
        """Did every thread cross the same number of barriers?"""
        return len(set(self.barrier_counts)) <= 1

    def total_accesses(self) -> int:
        return sum(iv.reads + iv.writes for iv in self.intervals)


class _IntervalBuilder:
    """Mutable accumulator for one interval while threads are replayed."""

    __slots__ = ("index", "rt", "ra", "wt", "wa", "events")

    def __init__(self, index: int, detail: bool) -> None:
        self.index = index
        self.rt: List[int] = []
        self.ra: List[int] = []
        self.wt: List[int] = []
        self.wa: List[int] = []
        self.events: Optional[List[AccessEvent]] = [] if detail else None

    def finish(self) -> IntervalAccesses:
        return IntervalAccesses(
            index=self.index,
            read_threads=np.asarray(self.rt, dtype=np.int64),
            read_addresses=np.asarray(self.ra, dtype=np.int64),
            write_threads=np.asarray(self.wt, dtype=np.int64),
            write_addresses=np.asarray(self.wa, dtype=np.int64),
            events=self.events,
        )


def trace_kernel(
    kernel: Callable[..., Generator[Any, Any, None]],
    block_dim: Tuple[int, int],
    *args: Any,
    warp_size: int = 32,
    detail_intervals: Optional[Set[int]] = None,
    **kwargs: Any,
) -> KernelTrace:
    """Symbolically replay ``kernel`` on every thread and record its tokens.

    ``args``/``kwargs`` are passed to the kernel body exactly as
    :meth:`repro.gpu.simt.Block.run` would.  Loaded values are replaced by
    zeros and shuffles return the lane's own contribution, which is sound
    for any kernel whose control flow and addressing are value-independent
    — true of every kernel in this repository (and a prerequisite for the
    lockstep SIMT model to execute them at all).

    Replay is per-thread, not lockstep: barrier *alignment* between threads
    is checked by the race detector via :attr:`KernelTrace.barrier_counts`,
    not enforced here.
    """
    bx, by = block_dim
    if bx <= 0 or by <= 0:
        raise ValueError("block dimensions must be positive")
    num_threads = bx * by
    detail = detail_intervals if detail_intervals is not None else set()

    builders: Dict[int, _IntervalBuilder] = {}

    def builder(interval: int) -> _IntervalBuilder:
        b = builders.get(interval)
        if b is None:
            b = _IntervalBuilder(interval, interval in detail)
            builders[interval] = b
        return b

    barrier_counts: List[int] = []
    atomic_ops = 0
    shuffle_ops = 0
    max_interval = 0

    for tid in range(num_threads):
        ctx = ThreadCtx(tid, block_dim, warp_size)
        gen = kernel(ctx, *args, **kwargs)
        interval = 0
        tokens = 0
        send_value: Any = None
        while True:
            try:
                tok = gen.send(send_value)
            except StopIteration:
                break
            tokens += 1
            if tokens > MAX_TOKENS_PER_THREAD:
                gen.close()
                raise RuntimeError(
                    f"thread {tid} of {getattr(kernel, '__name__', kernel)!r} "
                    f"presented more than {MAX_TOKENS_PER_THREAD} tokens; "
                    "kernel does not terminate under symbolic replay"
                )
            send_value = None
            kind = tok[0]
            if kind == _BARRIER:
                interval += 1
            elif kind == _LDS:
                addr, width = int(tok[1]), int(tok[2])
                b = builder(interval)
                for w in range(width):
                    b.rt.append(tid)
                    b.ra.append(addr + w)
                if b.events is not None:
                    frame = gen.gi_frame
                    line = frame.f_lineno if frame is not None else -1
                    b.events.append(AccessEvent(tid, "load", addr, width, line))
                send_value = (
                    np.float32(0.0) if width == 1 else np.zeros(width, dtype=np.float32)
                )
            elif kind == _STS:
                addr, width = int(tok[1]), int(tok[3])
                b = builder(interval)
                for w in range(width):
                    b.wt.append(tid)
                    b.wa.append(addr + w)
                if b.events is not None:
                    frame = gen.gi_frame
                    line = frame.f_lineno if frame is not None else -1
                    b.events.append(AccessEvent(tid, "store", addr, width, line))
            elif kind == _SHFL:
                shuffle_ops += 1
                send_value = tok[1]  # the lane's own value: neutral and exact
            elif kind == _ATOM:
                atomic_ops += 1
            elif kind == _IDLE:
                pass
            else:  # pragma: no cover - future token kinds
                raise ValueError(f"unknown operation token {kind!r} from thread {tid}")
        barrier_counts.append(interval)
        if interval > max_interval:
            max_interval = interval

    intervals = [
        builders[i].finish() if i in builders else _IntervalBuilder(i, False).finish()
        for i in range(max_interval + 1)
    ]
    try:
        source = inspect.getsourcefile(kernel) or "<unknown>"
    except TypeError:  # builtins / callables without source
        source = "<unknown>"
    return KernelTrace(
        kernel_name=getattr(kernel, "__name__", repr(kernel)),
        source_file=source,
        block_dim=(bx, by),
        warp_size=warp_size,
        barrier_counts=barrier_counts,
        intervals=intervals,
        atomic_ops=atomic_ops,
        shuffle_ops=shuffle_ops,
    )
