"""Single source of the package version.

The version is read from the installed package metadata so wheels and
editable installs agree with ``pyproject.toml``; the literal fallback keeps
``PYTHONPATH=src`` checkouts (CI, development) working without an install.
Every trace/metrics/profile export stamps this value into its header for
provenance — a committed ``BENCH_profile.json`` records which code produced
it.
"""

from __future__ import annotations

__all__ = ["__version__"]

#: fallback for uninstalled source checkouts; keep in sync with pyproject.toml
_FALLBACK_VERSION = "1.0.0"


def _detect_version() -> str:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return _FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return _FALLBACK_VERSION


__version__ = _detect_version()
