"""The widened tiling x schedule search space.

``repro.core.autotune.candidate_tilings`` enumerates ~tens of blockings
with a fixed microtile policy, double buffering always on, and the
atomic epilogue assumed.  The v2 space makes every one of those axes a
first-class dimension:

* tile shape ``mc x nc`` and k-panel rank ``kc``;
* microtile shape ``micro_m x micro_n`` (square *and* rectangular);
* double buffering on/off;
* epilogue reduction strategy (one-pass atomics vs two-pass partials).

A point is a :class:`ScheduleCandidate` — a frozen value object that
lowers to the :class:`~repro.core.tiling.TilingConfig` the cost model,
certifiers, and digests already understand, plus the reduction choice
that :func:`repro.perf.counts.fused_launch` takes as a flag.

:func:`schedule_space` enumerates every *launchable* point (construction
validation plus an occupancy check on the target device) in a fixed
deterministic order.  :func:`paper_space` reproduces the legacy
``candidate_tilings`` set exactly — same configs, same policy — so
"beam matches exhaustive on the paper space" is comparing like with
like.  :func:`neighbors` defines the mutation neighbourhood the beam /
evolutionary driver expands: one step along any single axis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Sequence, Tuple

from ..core.autotune import candidate_tilings
from ..core.tiling import TilingConfig
from ..gpu.device import GTX970, DeviceSpec

__all__ = [
    "MC_VALUES",
    "NC_VALUES",
    "KC_VALUES",
    "MICRO_SHAPES",
    "REDUCTIONS",
    "ScheduleCandidate",
    "schedule_space",
    "paper_space",
    "neighbors",
]

MC_VALUES: Tuple[int, ...] = (32, 64, 128, 256)
NC_VALUES: Tuple[int, ...] = (32, 64, 128, 256)
KC_VALUES: Tuple[int, ...] = (2, 4, 8, 16, 32)
MICRO_SHAPES: Tuple[Tuple[int, int], ...] = (
    (2, 2), (4, 4), (8, 8), (16, 16), (4, 8), (8, 4), (8, 16), (16, 8),
)
REDUCTIONS: Tuple[str, ...] = ("atomic", "two-pass")


@dataclass(frozen=True)
class ScheduleCandidate:
    """One point of the tiling x schedule space."""

    mc: int
    nc: int
    kc: int
    micro_m: int
    micro_n: int
    double_buffered: bool = True
    reduction: str = "atomic"

    def __post_init__(self) -> None:
        if self.reduction not in REDUCTIONS:
            raise ValueError(f"unknown reduction strategy {self.reduction!r}")
        if self.mc % self.micro_m or self.nc % self.micro_n:
            raise ValueError("microtile must divide the CTA tile")

    @property
    def tiling(self) -> TilingConfig:
        """Lower to the TilingConfig the rest of the system speaks.

        May raise ``ValueError`` — the same construction-time launch
        rules the legacy enumerator relies on.
        """
        return TilingConfig(
            mc=self.mc,
            nc=self.nc,
            kc=self.kc,
            block_dim_x=self.nc // self.micro_n,
            block_dim_y=self.mc // self.micro_m,
            double_buffered=self.double_buffered,
        )

    def key(self) -> Tuple[int, int, int, int, int, bool, str]:
        """Total-order identity (dedup and deterministic tie-breaks)."""
        return (
            self.mc, self.nc, self.kc, self.micro_m, self.micro_n,
            self.double_buffered, self.reduction,
        )

    def describe(self) -> str:
        return (
            f"{self.mc}x{self.nc} kc={self.kc} "
            f"micro {self.micro_m}x{self.micro_n} "
            f"{'db' if self.double_buffered else 'sb'} {self.reduction}"
        )

    def launchable_on(self, device: DeviceSpec) -> bool:
        """Whether the candidate passes validation and can launch."""
        threads = (self.nc // self.micro_n) * (self.mc // self.micro_m)
        if threads < 32 or threads > device.max_threads_per_block:
            return False
        if threads % 32:
            return False  # partial warps waste lanes and break certification
        try:
            self.tiling.occupancy_on(device)
        except ValueError:
            return False
        return True

    @classmethod
    def from_tiling(
        cls, tiling: TilingConfig, reduction: str = "atomic"
    ) -> "ScheduleCandidate":
        return cls(
            mc=tiling.mc,
            nc=tiling.nc,
            kc=tiling.kc,
            micro_m=tiling.micro_m,
            micro_n=tiling.micro_n,
            double_buffered=tiling.double_buffered,
            reduction=reduction,
        )


def schedule_space(
    device: DeviceSpec = GTX970,
    mc_values: Sequence[int] = MC_VALUES,
    nc_values: Sequence[int] = NC_VALUES,
    kc_values: Sequence[int] = KC_VALUES,
    micro_shapes: Sequence[Tuple[int, int]] = MICRO_SHAPES,
    reductions: Sequence[str] = REDUCTIONS,
    include_single_buffered: bool = True,
) -> List[ScheduleCandidate]:
    """Every launchable candidate, in deterministic enumeration order."""
    out: List[ScheduleCandidate] = []
    seen = set()
    buffer_opts = (True, False) if include_single_buffered else (True,)
    for mc in mc_values:
        for nc in nc_values:
            for kc in kc_values:
                for micro_m, micro_n in micro_shapes:
                    if mc % micro_m or nc % micro_n:
                        continue
                    for db in buffer_opts:
                        for red in reductions:
                            cand = ScheduleCandidate(
                                mc=mc, nc=nc, kc=kc,
                                micro_m=micro_m, micro_n=micro_n,
                                double_buffered=db, reduction=red,
                            )
                            if cand.key() in seen:
                                continue
                            if not cand.launchable_on(device):
                                continue
                            seen.add(cand.key())
                            out.append(cand)
    return out


def paper_space(device: DeviceSpec = GTX970) -> List[ScheduleCandidate]:
    """The legacy ``candidate_tilings`` set, lifted into candidates.

    Built *from* the legacy enumerator (not re-derived), so exhaustive
    search over this space evaluates exactly the configurations
    ``repro.core.autotune.autotune`` does — the apples-to-apples baseline
    for the beam-vs-exhaustive acceptance gate.
    """
    return [
        ScheduleCandidate.from_tiling(t) for t in candidate_tilings(device)
    ]


def _step(value: int, values: Sequence[int]) -> List[int]:
    """The immediate neighbours of ``value`` in an ordered axis."""
    if value not in values:
        return []
    i = values.index(value)
    out = []
    if i > 0:
        out.append(values[i - 1])
    if i + 1 < len(values):
        out.append(values[i + 1])
    return out


def neighbors(
    cand: ScheduleCandidate,
    device: DeviceSpec = GTX970,
    mc_values: Sequence[int] = MC_VALUES,
    nc_values: Sequence[int] = NC_VALUES,
    kc_values: Sequence[int] = KC_VALUES,
) -> List[ScheduleCandidate]:
    """All launchable single-axis mutations of one candidate.

    One step along mc/nc/kc, halving/doubling either microtile edge,
    swapping the microtile aspect, toggling double buffering, toggling
    the reduction strategy.  Deterministic order, no duplicates, and the
    candidate itself is never returned.
    """
    raw: List[ScheduleCandidate] = []

    def try_add(**changes: Any) -> None:
        try:
            raw.append(replace(cand, **changes))
        except ValueError:
            pass

    for mc in _step(cand.mc, mc_values):
        try_add(mc=mc)
    for nc in _step(cand.nc, nc_values):
        try_add(nc=nc)
    for kc in _step(cand.kc, kc_values):
        try_add(kc=kc)
    for m in (cand.micro_m // 2, cand.micro_m * 2):
        if m >= 1:
            try_add(micro_m=m)
    for n in (cand.micro_n // 2, cand.micro_n * 2):
        if n >= 1:
            try_add(micro_n=n)
    if cand.micro_m != cand.micro_n:
        try_add(micro_m=cand.micro_n, micro_n=cand.micro_m)
    try_add(double_buffered=not cand.double_buffered)
    other = "two-pass" if cand.reduction == "atomic" else "atomic"
    try_add(reduction=other)

    out: List[ScheduleCandidate] = []
    seen = {cand.key()}
    for c in raw:
        if c.key() in seen:
            continue
        if not c.launchable_on(device):
            continue
        seen.add(c.key())
        out.append(c)
    return out
