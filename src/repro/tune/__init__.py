"""Autotuner v2: slot-model-guided, memoised, certified schedule search.

The legacy :mod:`repro.core.autotune` ranks a few dozen blockings by
evaluating every one against the full pipeline cost model.  This package
supersedes that loop for real tuning work:

* :mod:`repro.tune.space` — the widened search space (tile dims x
  k-panel rank x microtile shape x double-buffering x reduction
  strategy) as frozen :class:`~repro.tune.space.ScheduleCandidate`
  values, plus the mutation neighbourhood;
* :mod:`repro.tune.search` — the beam + evolutionary driver: slot-model
  screening (:mod:`repro.perf.slots`), full cost-model evaluation of
  the frontier only, every evaluation memoised in the content-addressed
  :class:`~repro.store.result_store.ResultStore`, deterministic under a
  seed, budget counted in requests so warm replays are bit-identical
  with zero model runs; and the memoised exhaustive baseline;
* :mod:`repro.tune.certify` — the acceptance gates: the Fig.-5 bank
  certifier, the shape-generic race detector, and the rounding-error
  certifier (:mod:`repro.analysis.fpcert`) walk the ranking best-first,
  so every returned winner carries a bank verdict, a race-free proof,
  and an accuracy certificate within the ulp budget.

CLI: ``repro autotune --search beam --beam-width 8 --budget 64
--explain --json``.  See ``docs/AUTOTUNING.md``.
"""

from .certify import (
    ACCURACY_CERTIFIED,
    ACCURACY_REJECTED,
    ACCURACY_SKIPPED,
    CandidateCertification,
    certify_candidate,
)
from .search import (
    EVAL_KIND,
    SearchStats,
    TuneOutcome,
    beam_search,
    eval_digest,
    exhaustive_search,
)
from .space import (
    KC_VALUES,
    MC_VALUES,
    MICRO_SHAPES,
    NC_VALUES,
    REDUCTIONS,
    ScheduleCandidate,
    neighbors,
    paper_space,
    schedule_space,
)

__all__ = [
    "ACCURACY_CERTIFIED",
    "ACCURACY_REJECTED",
    "ACCURACY_SKIPPED",
    "CandidateCertification",
    "certify_candidate",
    "EVAL_KIND",
    "SearchStats",
    "TuneOutcome",
    "beam_search",
    "eval_digest",
    "exhaustive_search",
    "KC_VALUES",
    "MC_VALUES",
    "MICRO_SHAPES",
    "NC_VALUES",
    "REDUCTIONS",
    "ScheduleCandidate",
    "neighbors",
    "paper_space",
    "schedule_space",
]
