"""Memoised beam + evolutionary search over the schedule space.

The driver combines four ingredients the repository already trusts:

* the **slot-level issue model** (:func:`repro.perf.slots.
  saturation_report`) as a cheap screen — pure arithmetic, no pipeline
  assembly — that orders thousands of candidates before a single full
  evaluation is spent;
* the **instruction-level cost model** (:func:`repro.perf.pipeline.
  model_run`) as the expensive oracle, invoked only on the beam
  frontier and its surviving mutants;
* the **content-addressed store** (:class:`repro.store.memo.JsonMemo`
  over :class:`~repro.store.result_store.ResultStore`): every oracle
  evaluation is memoised under a digest of (device, spec, candidate,
  calibration), so a repeated autotune run — same machine, different
  process — replays warm with *zero* cost-model evaluations;
* the **static certifiers** (:mod:`repro.tune.certify`): the ranking is
  walked best-first and the first candidate that passes both the bank
  and race gates is the winner — a certified-reject candidate can never
  be returned.

Determinism is load-bearing: the expansion order is fixed, ties break on
the candidate's total-order key, the evolutionary sampling uses a seeded
``random.Random``, and the evaluation *budget* counts requests (store
hits included) rather than model runs — so a warm replay follows the
exact trajectory of the cold run it replays.

:func:`exhaustive_search` evaluates the whole space through the same
memoised evaluator (streaming top-k, no full sort), which is both the
quality baseline for the beam and the upgraded legacy path.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.autotune import TuneResult
from ..core.digest import config_digest
from ..core.problem import ProblemSpec
from ..gpu.device import GTX970, DeviceSpec
from ..perf.calibration import Calibration, DEFAULT_CALIBRATION
from ..perf.pipeline import model_run
from ..perf.slots import saturation_report
from ..store.memo import JsonMemo
from ..store.result_store import ResultStore
from .certify import CandidateCertification, certify_candidate
from .space import ScheduleCandidate, neighbors, schedule_space

__all__ = [
    "EVAL_KIND",
    "SearchStats",
    "TuneOutcome",
    "eval_digest",
    "beam_search",
    "exhaustive_search",
]

#: record-schema namespace of one memoised evaluation; bump on layout change
EVAL_KIND = "tune.eval/v1"

Certifier = Callable[[ScheduleCandidate], CandidateCertification]
CandidateKey = Tuple[int, int, int, int, int, bool, str]


@dataclass
class SearchStats:
    """Counters of one search run (the quantities the bench gates)."""

    space_size: int = 0
    screened: int = 0  # slot-model screenings (cheap)
    requests: int = 0  # evaluation requests = store hits + model runs
    evaluations: int = 0  # full model_run evaluations actually performed
    store_hits: int = 0
    generations: int = 0
    certifications: int = 0
    certified_rejects: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "space_size": self.space_size,
            "screened": self.screened,
            "requests": self.requests,
            "evaluations": self.evaluations,
            "store_hits": self.store_hits,
            "generations": self.generations,
            "certifications": self.certifications,
            "certified_rejects": self.certified_rejects,
        }


@dataclass(frozen=True)
class TuneOutcome:
    """Result of one search: the certified winner plus its provenance."""

    search: str  # "beam" | "exhaustive"
    best: TuneResult
    best_candidate: ScheduleCandidate
    ranked: Tuple[TuneResult, ...]  # best-first, winner included
    stats: SearchStats
    certification: Optional[CandidateCertification]

    def to_json(self) -> dict:
        return {
            "search": self.search,
            "best": self.best.to_json(),
            "candidate": self.best_candidate.describe(),
            "ranked": [r.to_json() for r in self.ranked],
            "stats": self.stats.as_dict(),
            "certification": (
                self.certification.to_payload() if self.certification else None
            ),
        }


def eval_digest(
    spec: ProblemSpec,
    cand: ScheduleCandidate,
    device: DeviceSpec,
    cal: Calibration,
) -> str:
    """Content address of one (device, spec, candidate) evaluation."""
    return config_digest(
        {
            "kind": EVAL_KIND,
            "spec": spec,
            "tiling": cand.tiling,
            "reduction": cand.reduction,
            "device": device,
            "cal": cal,
        }
    )


@dataclass
class _Evaluator:
    """Memoised cost-model oracle shared by both search drivers.

    Three cache layers, cheapest first: an in-process result table (one
    evaluation per candidate per run — repeats are free and uncounted),
    the persistent store (a hit costs a *request* but no model run), and
    the full :func:`model_run` (a request *and* an evaluation, written
    back for every later run to reuse).
    """

    spec: ProblemSpec
    device: DeviceSpec
    cal: Calibration
    memo: JsonMemo
    stats: SearchStats
    results: Dict[CandidateKey, TuneResult] = field(default_factory=dict)
    candidates: Dict[CandidateKey, ScheduleCandidate] = field(default_factory=dict)
    _screens: Dict[CandidateKey, float] = field(default_factory=dict)

    def screen(self, cand: ScheduleCandidate) -> float:
        """Slot-model screening seconds (cheap, memoised in-process)."""
        key = cand.key()
        cached = self._screens.get(key)
        if cached is not None:
            return cached
        rep = saturation_report(
            self.spec,
            cand.tiling,
            self.device,
            self.cal,
            atomic_reduction=cand.reduction == "atomic",
        )
        self.stats.screened += 1
        self._screens[key] = rep.seconds
        return rep.seconds

    def evaluated(self, cand: ScheduleCandidate) -> bool:
        return cand.key() in self.results

    def evaluate(self, cand: ScheduleCandidate) -> TuneResult:
        key = cand.key()
        hit = self.results.get(key)
        if hit is not None:
            return hit
        self.stats.requests += 1
        tiling = cand.tiling
        digest = eval_digest(self.spec, cand, self.device, self.cal)
        payload = self.memo.get(digest)
        if payload is not None:
            self.stats.store_hits += 1
            result = TuneResult(
                tiling=tiling,
                seconds=payload["seconds"],
                blocks_per_sm=payload["blocks_per_sm"],
                limiter=payload["limiter"],
                reduction=cand.reduction,
                saturation=payload.get("saturation"),
                limiter_detail=payload.get("limiter_detail"),
            )
        else:
            atomic = cand.reduction == "atomic"
            run = model_run(
                "fused", self.spec, tiling, self.device, self.cal,
                atomic_reduction=atomic,
            )
            self.stats.evaluations += 1
            occ = tiling.occupancy_on(self.device)
            sat = saturation_report(
                self.spec, tiling, self.device, self.cal, atomic_reduction=atomic
            )
            limiter_detail = {
                "occupancy": occ.limiter,
                "slot_bottleneck": sat.bottleneck,
                "phase_bottlenecks": sat.phase_bottlenecks,
            }
            result = TuneResult(
                tiling=tiling,
                seconds=run.total_seconds,
                blocks_per_sm=occ.blocks_per_sm,
                limiter=occ.limiter,
                reduction=cand.reduction,
                saturation=sat.to_payload(),
                limiter_detail=limiter_detail,
            )
            self.memo.put(
                digest,
                {
                    "kind": EVAL_KIND,
                    "seconds": result.seconds,
                    "blocks_per_sm": result.blocks_per_sm,
                    "limiter": result.limiter,
                    "reduction": result.reduction,
                    "saturation": result.saturation,
                    "limiter_detail": limiter_detail,
                },
            )
        self.results[key] = result
        self.candidates[key] = cand
        return result

    def ranking(self) -> List[CandidateKey]:
        """Evaluated candidate keys, best seconds first, key tie-break."""
        return sorted(self.results, key=lambda k: (self.results[k].seconds, k))


def _screen_order(
    ev: _Evaluator, pool: Sequence[ScheduleCandidate]
) -> List[ScheduleCandidate]:
    return sorted(pool, key=lambda c: (ev.screen(c), c.key()))


def _finish(
    search: str,
    ev: _Evaluator,
    stats: SearchStats,
    require_certified: bool,
    layout: str,
    certifier: Optional[Certifier],
    top_k: int,
) -> TuneOutcome:
    """Rank the evaluated set and walk it best-first through the gates."""
    order = ev.ranking()
    if not order:
        raise ValueError("search evaluated no candidates (budget too small?)")
    ranked = tuple(ev.results[k] for k in order[:top_k])

    if not require_certified:
        best_key = order[0]
        return TuneOutcome(
            search=search,
            best=ev.results[best_key],
            best_candidate=ev.candidates[best_key],
            ranked=ranked,
            stats=stats,
            certification=None,
        )

    # the default gate arms the accuracy certifier with the search's own
    # problem shape, so every winner carries a rounding-error certificate
    gate: Certifier = certifier if certifier is not None else (
        lambda c: certify_candidate(c, layout, spec=ev.spec)
    )
    for key in order:
        cand = ev.candidates[key]
        cert = gate(cand)
        stats.certifications += 1
        if cert.accepted:
            return TuneOutcome(
                search=search,
                best=ev.results[key],
                best_candidate=cand,
                ranked=ranked,
                stats=stats,
                certification=cert,
            )
        stats.certified_rejects += 1
    raise ValueError(
        f"no candidate passed certification ({stats.certified_rejects} rejected)"
    )


def beam_search(
    spec: ProblemSpec,
    device: DeviceSpec = GTX970,
    cal: Calibration = DEFAULT_CALIBRATION,
    space: Optional[Sequence[ScheduleCandidate]] = None,
    beam_width: int = 8,
    budget: Optional[int] = None,
    generations: int = 12,
    seed: int = 0,
    store: Optional[ResultStore] = None,
    require_certified: bool = True,
    layout: str = "optimized",
    certifier: Optional[Certifier] = None,
    top_k: int = 10,
) -> TuneOutcome:
    """Beam + evolutionary search; see the module docstring.

    ``budget`` caps evaluation *requests* (store hits included), so warm
    replays walk the same trajectory as the cold run.  ``certifier`` is
    injectable for the negative-control tests; production always runs
    :func:`repro.tune.certify.certify_candidate`.
    """
    if beam_width < 1:
        raise ValueError("beam_width must be positive")
    if budget is not None and budget < 1:
        raise ValueError("budget must be positive (or None for unbounded)")
    cands = list(space) if space is not None else schedule_space(device)
    if not cands:
        raise ValueError("empty search space")

    stats = SearchStats(space_size=len(cands))
    ev = _Evaluator(spec, device, cal, JsonMemo(store), stats)
    rng = random.Random(seed)

    def can_request() -> bool:
        return budget is None or stats.requests < budget

    # Seed frontier: the slot model orders the whole space for free;
    # the top 2w get full evaluations.
    frontier = _screen_order(ev, cands)[: 2 * beam_width]
    for cand in frontier:
        if not can_request():
            break
        ev.evaluate(cand)

    for _ in range(generations):
        if not can_request():
            break
        stats.generations += 1
        beam_keys = ev.ranking()[:beam_width]
        pool: List[ScheduleCandidate] = []
        seen = set(ev.results)
        for key in beam_keys:
            for nb in neighbors(ev.candidates[key], device):
                if nb.key() in seen:
                    continue
                seen.add(nb.key())
                pool.append(nb)
        if not pool:
            break
        ordered = _screen_order(ev, pool)
        greedy = ordered[:beam_width]
        rest = ordered[beam_width:]
        explore = (
            rng.sample(rest, min(len(rest), max(1, beam_width // 2)))
            if rest
            else []
        )
        progressed = 0
        for cand in greedy + explore:
            if not can_request():
                break
            ev.evaluate(cand)
            progressed += 1
        if not progressed:
            break

    return _finish(
        "beam", ev, stats, require_certified, layout, certifier, top_k
    )


def exhaustive_search(
    spec: ProblemSpec,
    device: DeviceSpec = GTX970,
    cal: Calibration = DEFAULT_CALIBRATION,
    space: Optional[Sequence[ScheduleCandidate]] = None,
    store: Optional[ResultStore] = None,
    require_certified: bool = True,
    layout: str = "optimized",
    certifier: Optional[Certifier] = None,
    top_k: int = 10,
) -> TuneOutcome:
    """Evaluate the whole space through the memoised evaluator.

    The ranking streams through a bounded min-heap (``heapq.nsmallest``
    over the evaluation generator), mirroring the ``top_k`` path of
    :func:`repro.core.autotune.rank_tilings` — but every evaluated
    candidate stays in the evaluator's table for certification walks.
    """
    cands = list(space) if space is not None else schedule_space(device)
    if not cands:
        raise ValueError("empty search space")
    stats = SearchStats(space_size=len(cands))
    ev = _Evaluator(spec, device, cal, JsonMemo(store), stats)
    # Streaming top-k evaluation: the heap holds k results, never the
    # full sorted list.  (The evaluator's table keeps all results for
    # the certification walk; the heap bounds the *sort*, not storage.)
    heapq.nsmallest(
        max(top_k, 1),
        (ev.evaluate(c) for c in cands),
        key=lambda r: r.seconds,
    )
    return _finish(
        "exhaustive", ev, stats, require_certified, layout, certifier, top_k
    )
