"""Static certification of search winners.

A search that only optimizes the cost model can happily return a
schedule that deadlocks or corrupts shared memory — the model doesn't
know.  Every candidate the v2 autotuner *returns* therefore passes two
static gates first:

* **bank conflicts** — :func:`repro.analysis.banks.certify_tiling`
  enumerates every warp instruction of the Fig.-5 staging mapping.  The
  mapping only *describes* 128 x 128 tiles on a 16 x 16 block, so the
  verdict is a trichotomy: ``certified`` (proof of replay factor 0),
  ``rejected`` (a disproof — some instruction replays), or
  ``inapplicable`` (the mapping makes no claim about this shape; absence
  of a proof is not a disproof);
* **races** — :func:`repro.analysis.schedules.certify_schedule_races`
  replays the shape-generic schedule kernel symbolically and applies
  GPUVerify-style barrier-interval analysis.  This gate is *always*
  applicable: every winner carries a definite race verdict;
* **accuracy** — :func:`repro.analysis.fpcert.certify_schedule` walks the
  candidate's reduction tree and bounds its worst-case rounding error.
  The gate runs whenever the caller supplies the problem shape (the
  bound depends on K and the grid); a candidate whose certified bound
  exceeds the ulp budget, or that violates a structural contract
  (narrowed accumulator, uncompensated two-pass commit), is
  certified-reject.

A candidate is **accepted** iff the bank gate did not reject it, the
race gate proved it race-free, and the accuracy gate (when it ran) did
not reject it.  The search drivers walk their ranking best-first
through :func:`certify_candidate` and return the first accepted point —
a certified-reject candidate can never win, which the negative-control
tests pin with seeded conflicting and accuracy mutants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..analysis.banks import certify_tiling
from ..analysis.fpcert import DEFAULT_ULP_BUDGET, certify_schedule
from ..analysis.schedules import certify_schedule_races
from ..core.problem import ProblemSpec
from .space import ScheduleCandidate

__all__ = ["CandidateCertification", "certify_candidate"]

BANK_CERTIFIED = "certified"
BANK_INAPPLICABLE = "inapplicable"
BANK_REJECTED = "rejected"

ACCURACY_CERTIFIED = "certified"
ACCURACY_REJECTED = "rejected"
ACCURACY_SKIPPED = "skipped"  # no problem shape supplied; bound undefined


@dataclass(frozen=True)
class CandidateCertification:
    """Combined static verdict for one candidate."""

    candidate_key: tuple
    bank_status: str  # certified | inapplicable | rejected
    race_free: bool
    bank_payload: Optional[Dict[str, Any]]
    race_payload: Dict[str, Any]
    accuracy_status: str = ACCURACY_SKIPPED  # certified | rejected | skipped
    accuracy_payload: Optional[Dict[str, Any]] = field(default=None)

    @property
    def accepted(self) -> bool:
        return (
            self.bank_status != BANK_REJECTED
            and self.race_free
            and self.accuracy_status != ACCURACY_REJECTED
        )

    def describe(self) -> str:
        return (
            f"banks: {self.bank_status}, races: "
            f"{'race-free' if self.race_free else 'VIOLATIONS'}, "
            f"accuracy: {self.accuracy_status}"
            f" -> {'accepted' if self.accepted else 'rejected'}"
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "bank_status": self.bank_status,
            "race_free": self.race_free,
            "accuracy_status": self.accuracy_status,
            "accepted": self.accepted,
            "banks": self.bank_payload,
            "races": self.race_payload,
            "accuracy": self.accuracy_payload,
        }


def certify_candidate(
    cand: ScheduleCandidate,
    layout: str = "optimized",
    spec: Optional[ProblemSpec] = None,
    ulp_budget: float = DEFAULT_ULP_BUDGET,
) -> CandidateCertification:
    """Run the static gates on one candidate.

    ``spec`` arms the accuracy gate: the rounding-error bound depends on
    the problem shape (K, the CTA grid), so without a spec the accuracy
    verdict is ``skipped`` — never silently certified.
    """
    tiling = cand.tiling

    cert = certify_tiling(tiling, layout)
    if cert is None:
        bank_status, bank_payload = BANK_INAPPLICABLE, None
    elif cert.conflict_free:
        bank_status, bank_payload = BANK_CERTIFIED, cert.to_payload()
    else:
        bank_status, bank_payload = BANK_REJECTED, cert.to_payload()

    races = certify_schedule_races(tiling, cand.reduction)

    accuracy_status = ACCURACY_SKIPPED
    accuracy_payload: Optional[Dict[str, Any]] = None
    if spec is not None:
        fp = certify_schedule(
            tiling, spec, reduction=cand.reduction, ulp_budget=ulp_budget
        )
        accuracy_status = ACCURACY_CERTIFIED if fp.certified else ACCURACY_REJECTED
        accuracy_payload = fp.to_payload()

    return CandidateCertification(
        candidate_key=cand.key(),
        bank_status=bank_status,
        race_free=races.ok,
        bank_payload=bank_payload,
        race_payload=races.to_payload(),
        accuracy_status=accuracy_status,
        accuracy_payload=accuracy_payload,
    )
