"""Static certification of search winners.

A search that only optimizes the cost model can happily return a
schedule that deadlocks or corrupts shared memory — the model doesn't
know.  Every candidate the v2 autotuner *returns* therefore passes two
static gates first:

* **bank conflicts** — :func:`repro.analysis.banks.certify_tiling`
  enumerates every warp instruction of the Fig.-5 staging mapping.  The
  mapping only *describes* 128 x 128 tiles on a 16 x 16 block, so the
  verdict is a trichotomy: ``certified`` (proof of replay factor 0),
  ``rejected`` (a disproof — some instruction replays), or
  ``inapplicable`` (the mapping makes no claim about this shape; absence
  of a proof is not a disproof);
* **races** — :func:`repro.analysis.schedules.certify_schedule_races`
  replays the shape-generic schedule kernel symbolically and applies
  GPUVerify-style barrier-interval analysis.  This gate is *always*
  applicable: every winner carries a definite race verdict.

A candidate is **accepted** iff the bank gate did not reject it and the
race gate proved it race-free.  The search drivers walk their ranking
best-first through :func:`certify_candidate` and return the first
accepted point — a certified-reject candidate can never win, which the
negative-control tests pin with seeded conflicting mutants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..analysis.banks import certify_tiling
from ..analysis.schedules import certify_schedule_races
from .space import ScheduleCandidate

__all__ = ["CandidateCertification", "certify_candidate"]

BANK_CERTIFIED = "certified"
BANK_INAPPLICABLE = "inapplicable"
BANK_REJECTED = "rejected"


@dataclass(frozen=True)
class CandidateCertification:
    """Combined static verdict for one candidate."""

    candidate_key: tuple
    bank_status: str  # certified | inapplicable | rejected
    race_free: bool
    bank_payload: Optional[Dict[str, Any]]
    race_payload: Dict[str, Any]

    @property
    def accepted(self) -> bool:
        return self.bank_status != BANK_REJECTED and self.race_free

    def describe(self) -> str:
        return (
            f"banks: {self.bank_status}, races: "
            f"{'race-free' if self.race_free else 'VIOLATIONS'}"
            f" -> {'accepted' if self.accepted else 'rejected'}"
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "bank_status": self.bank_status,
            "race_free": self.race_free,
            "accepted": self.accepted,
            "banks": self.bank_payload,
            "races": self.race_payload,
        }


def certify_candidate(
    cand: ScheduleCandidate,
    layout: str = "optimized",
) -> CandidateCertification:
    """Run both static gates on one candidate."""
    tiling = cand.tiling

    cert = certify_tiling(tiling, layout)
    if cert is None:
        bank_status, bank_payload = BANK_INAPPLICABLE, None
    elif cert.conflict_free:
        bank_status, bank_payload = BANK_CERTIFIED, cert.to_payload()
    else:
        bank_status, bank_payload = BANK_REJECTED, cert.to_payload()

    races = certify_schedule_races(tiling, cand.reduction)

    return CandidateCertification(
        candidate_key=cand.key(),
        bank_status=bank_status,
        race_free=races.ok,
        bank_payload=bank_payload,
        race_payload=races.to_payload(),
    )
