"""Shared exception taxonomy for the whole package.

Historically each layer raised bare ``ValueError``/``KeyError``; the
resilient experiment harness needs to *classify* failures (is this retry-
worthy? configuration? corruption?), so every error the library raises on
purpose now derives from :class:`ReproError`.

Backward compatibility is preserved by double inheritance: each class also
subclasses the builtin it replaced, so ``except ValueError`` /
``except KeyError`` in downstream code keeps working unchanged.

The taxonomy:

``InvalidProblemError``
    malformed user inputs (shapes, dtypes, non-finite values, bad spec
    parameters) — a ``ValueError``;
``UnknownImplementationError`` / ``UnknownKernelError``
    registry lookups that missed — ``KeyError`` with a readable message;
``FaultConfigError``
    an inconsistent :class:`repro.faults.FaultSpec` — a ``ValueError``;
``TransientModelError``
    a failure worth retrying (the harness's backoff loop catches exactly
    this) — a ``RuntimeError``;
``ExperimentTimeoutError``
    a grid point exceeded its wall-clock budget — a ``TimeoutError``;
``CheckpointCorruptionError``
    an unreadable sweep journal — a ``ValueError``;
``WorkerCrashError``
    a pool worker died mid-task (the process-pool analogue of a GPU CTA
    falling over) — a ``RuntimeError`` carrying the task index and the
    backend so schedulers can report *which* grid point was in flight;
``ServiceOverloadError``
    the serving layer shed a request at admission (queue full or the
    latency budget is hopeless) — a ``RuntimeError`` carrying a
    ``retry_after_s`` hint clients should back off by;
``DeadlineExceededError``
    a request's end-to-end deadline budget expired before (or while) its
    work ran — a ``TimeoutError``;
``CircuitOpenError``
    an execution backend's circuit breaker is open and the request could
    not be served even by the degraded path — a ``RuntimeError``;
``DegradedResultWarning``
    structured warning emitted when ABFT retries are exhausted and the
    computation falls back to the reference implementation.  The serving
    layer reuses the same convention for results that fell back to the
    reference path after a tripped breaker or a detected corruption.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidProblemError",
    "UnknownImplementationError",
    "UnknownKernelError",
    "FaultConfigError",
    "TransientModelError",
    "ExperimentTimeoutError",
    "CheckpointCorruptionError",
    "WorkerCrashError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "DegradedResultWarning",
]


class ReproError(Exception):
    """Base class for every intentional error raised by :mod:`repro`."""


class InvalidProblemError(ReproError, ValueError):
    """User-supplied problem inputs are malformed (shape, dtype, values)."""


class _ReadableKeyError(ReproError, KeyError):
    """KeyError whose ``str()`` is the message, not the quoted repr.

    ``KeyError.__str__`` returns ``repr(args[0])``, which turns helpful
    messages into quoted blobs; this override restores plain text while
    keeping ``except KeyError`` compatibility.
    """

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.args[0] if self.args else ""


class UnknownImplementationError(_ReadableKeyError):
    """Requested implementation name is not in ``IMPLEMENTATIONS``."""


class UnknownKernelError(_ReadableKeyError):
    """Requested kernel name is not in ``KERNELS``."""


class FaultConfigError(ReproError, ValueError):
    """A fault-injection specification is inconsistent."""


class TransientModelError(ReproError, RuntimeError):
    """A retryable failure: the resilient harness backs off and retries."""


class ExperimentTimeoutError(ReproError, TimeoutError):
    """One experiment grid point exceeded its wall-clock budget."""


class CheckpointCorruptionError(ReproError, ValueError):
    """A sweep journal exists but cannot be parsed."""


class WorkerCrashError(ReproError, RuntimeError):
    """A pool worker process died mid-task.

    Structured: carries the index of the task that was in flight and the
    backend name so sweep reports can say which grid point to suspect.
    """

    def __init__(self, message: str, task_index: int | None = None, backend: str = ""):
        super().__init__(message)
        self.task_index = task_index
        self.backend = backend


class ServiceOverloadError(ReproError, RuntimeError):
    """The serving layer shed this request at admission.

    ``retry_after_s`` is the server's estimate of when capacity will free
    up (queue depth x recent per-request latency); well-behaved clients
    back off at least that long before retrying.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's end-to-end deadline budget expired."""


class CircuitOpenError(ReproError, RuntimeError):
    """An execution backend's circuit breaker rejected the call."""


class DegradedResultWarning(UserWarning):
    """ABFT retries were exhausted; the result came from the reference path.

    Structured: carries the failing CTA coordinates and the attempt count so
    monitoring can aggregate without parsing the message.
    """

    def __init__(self, message: str, cta: tuple[int, int] | None = None, attempts: int = 0):
        super().__init__(message)
        self.cta = cta
        self.attempts = attempts
