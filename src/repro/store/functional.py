"""Persistently cached functional kernel summation.

:func:`cached_solve` wraps the :data:`repro.core.IMPLEMENTATIONS` registry
with the result store: the potential vector ``V`` of one (implementation,
spec, tiling, engine) point is computed once per store, persisted as an
NPZ record, and served bit-identically (``np.array_equal``) to every later
process that shares the cache directory.

Fault safety — the rule the tests enforce:

* with a fault-injection context armed (:func:`repro.faults.active_
  injector` non-``None``) the store is **bypassed in both directions** —
  an injected run must not be served a clean cached result, and its
  (possibly corrupted) output must never poison the clean cache;
* a run that degrades to the reference under ABFT (it emitted
  :class:`repro.errors.DegradedResultWarning`) is returned to the caller
  but **not** written back either — degradation means the environment was
  faulty, and the cache only holds results attested clean.

Inputs are derived deterministically from the spec via
:func:`repro.core.problem.generate`, so the digest needs no array
checksum of ``A``/``B``/``W`` — the (spec, point_scale) pair pins them.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..core.api import IMPLEMENTATIONS
from ..core.digest import config_digest
from ..core.problem import ProblemData, ProblemSpec, generate
from ..core.tiling import PAPER_TILING, TilingConfig
from ..errors import DegradedResultWarning, UnknownImplementationError
from ..faults.injector import active_injector
from ..obs.metrics import counter_inc
from ..obs.tracer import span

__all__ = ["solve_digest", "cached_solve", "FAST_DEFAULT_METHOD"]

#: record-schema namespace; bump when the record layout changes
SOLVE_KIND = "functional.solve/v2"

#: method tag the "fast" implementation runs at through the registry
FAST_DEFAULT_METHOD = "auto:eps=1e-06"


def _resolve_method(implementation: str, method: Optional[str]) -> str:
    """The algorithm tag entering the digest.

    Dense O(M*N) implementations all compute the same mathematical
    object, so they share the ``"dense"`` tag (their results are already
    distinguished by the implementation name); the hierarchical path
    approximates it to an eps, so its tag carries method and eps —
    hierarchical and dense records for one spec can never collide, and
    neither can two fast solves at different accuracy targets.
    """
    if method is not None:
        return method
    return FAST_DEFAULT_METHOD if implementation == "fast" else "dense"


def solve_digest(
    implementation: str,
    spec: ProblemSpec,
    tiling: TilingConfig = PAPER_TILING,
    engine: str = "auto",
    point_scale: float = 1.0,
    method: Optional[str] = None,
) -> str:
    """Content address of one functional solve."""
    return config_digest(
        {
            "kind": SOLVE_KIND,
            "implementation": implementation,
            "method": _resolve_method(implementation, method),
            "spec": spec,
            "tiling": tiling,
            "engine": engine,
            "point_scale": point_scale,
        }
    )


def _run(
    implementation: str,
    data: ProblemData,
    tiling: TilingConfig,
    engine: str,
) -> tuple[np.ndarray, bool]:
    """Execute one implementation; returns (V, degraded?)."""
    from ..core.fused import FusedKernelSummation

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DegradedResultWarning)
        if implementation == "fused" and engine != "auto":
            V = FusedKernelSummation(tiling, engine=engine)(data)
        else:
            V = IMPLEMENTATIONS[implementation](data, tiling)
    degraded = any(issubclass(w.category, DegradedResultWarning) for w in caught)
    # re-emit so callers still see the warning the run produced
    for w in caught:
        warnings.warn_explicit(w.message, w.category, w.filename, w.lineno)
    return V, degraded


def cached_solve(
    implementation: str,
    spec: ProblemSpec,
    tiling: TilingConfig = PAPER_TILING,
    engine: str = "auto",
    store=None,
    data: Optional[ProblemData] = None,
    point_scale: float = 1.0,
) -> np.ndarray:
    """Kernel summation through the persistent result store.

    With ``store=None`` this is a plain compute.  ``data`` overrides the
    generated inputs; passing it disables the cache (the digest only pins
    *generated* inputs), which keeps user-supplied arrays safe by default.
    """
    if implementation not in IMPLEMENTATIONS:
        raise UnknownImplementationError(
            f"unknown implementation {implementation!r}; "
            f"available: {sorted(IMPLEMENTATIONS)}"
        )
    custom_data = data is not None
    if data is None:
        data = generate(spec, point_scale=point_scale)

    injected = active_injector() is not None
    usable = store is not None and not injected and not custom_data
    digest = solve_digest(implementation, spec, tiling, engine, point_scale) if usable else None

    if usable:
        cached = store.get(digest)
        if cached is not None:
            payload, arrays = cached
            if payload.get("kind") == SOLVE_KIND and "V" in arrays:
                counter_inc("store.solve.hits")
                return arrays["V"]
    if injected:
        counter_inc("store.solve.bypassed_fault")

    with span(
        "store.solve",
        implementation=implementation,
        M=spec.M, N=spec.N, K=spec.K,
        cached=False,
    ):
        V, degraded = _run(implementation, data, tiling, engine)

    if usable and not degraded:
        store.put(
            digest,
            {
                "kind": SOLVE_KIND,
                "implementation": implementation,
                "method": _resolve_method(implementation, None),
                "engine": engine,
                "M": spec.M, "N": spec.N, "K": spec.K,
                "dtype": spec.dtype,
            },
            arrays={"V": V},
        )
    elif degraded:
        counter_inc("store.solve.degraded_uncached")
    return V
