"""Persistent, content-addressed experiment result store.

The paper's evaluation is one large parameter grid re-walked by every
figure bench, CLI invocation, and CI job; this package makes each grid
point compute-once-per-machine instead of once-per-process.  Records are
addressed by a :func:`repro.core.digest.config_digest` over everything
that determines the answer (repro version, device config, pipeline,
engine, shapes, dtype, kernel/tiling parameters, fault spec), persisted
as atomic-rename JSON/NPZ files, and verified on read — corruption is a
cache miss, never a wrong answer.

Entry points:

* :class:`ResultStore` — the store itself (``get``/``put``/``verify``/
  ``clear``; counters feed ``repro.obs`` under ``store.*``);
* :func:`default_store` — the store named by ``$REPRO_CACHE_DIR``;
* :func:`cached_solve` — functional kernel summation through the store;
* :mod:`repro.store.shm` — zero-copy shared-memory input shipping for
  the process sweep backend.

See ``docs/CACHING.md`` for the record layout and invalidation rules.
"""

from .functional import FAST_DEFAULT_METHOD, SOLVE_KIND, cached_solve, solve_digest
from .memo import JsonMemo
from .result_store import CACHE_DIR_ENV, ResultStore, StoreStats, VerifyReport, default_store
from .shm import SharedNDArray, attach_arrays, get_shared_arrays, share_arrays, unlink_arrays

__all__ = [
    "ResultStore",
    "StoreStats",
    "VerifyReport",
    "default_store",
    "CACHE_DIR_ENV",
    "cached_solve",
    "solve_digest",
    "SOLVE_KIND",
    "FAST_DEFAULT_METHOD",
    "JsonMemo",
    "SharedNDArray",
    "share_arrays",
    "attach_arrays",
    "get_shared_arrays",
    "unlink_arrays",
]
