"""Scalar-payload memoisation over the content-addressed store.

:func:`repro.store.functional.cached_solve` caches *array* results (the
potential vector).  The autotuner needs the same compute-once-per-machine
behaviour for small *scalar* records — one cost-model evaluation per
(device, spec, candidate) digest — where the NPZ side of a record is
dead weight.  :class:`JsonMemo` is that thin adapter: JSON payload in,
JSON payload out, every miss recomputed by the caller and written back
atomically through :class:`~repro.store.result_store.ResultStore`.

A ``JsonMemo(None)`` is a null memoiser (every lookup misses, writes are
dropped), so call sites need no ``if store is not None`` forks — the
search driver runs identically with and without a cache directory, just
slower.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .result_store import ResultStore

__all__ = ["JsonMemo"]


class JsonMemo:
    """JSON-payload view of a :class:`ResultStore` (or of nothing).

    Counters are per-instance: ``hits``/``misses`` describe this
    memoiser's traffic regardless of what else shares the store.
    """

    def __init__(self, store: Optional[ResultStore]) -> None:
        self.store = store
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def persistent(self) -> bool:
        return self.store is not None

    def get(self, digest: str) -> Optional[dict]:
        """The cached payload, or ``None`` on miss/corruption/null store."""
        if self.store is None:
            self.misses += 1
            return None
        rec = self.store.get(digest)
        if rec is None:
            self.misses += 1
            return None
        payload, _arrays = rec
        self.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> None:
        """Persist one payload (dropped silently on a null store)."""
        if self.store is None:
            return
        self.store.put(digest, payload)
        self.writes += 1

    def get_or_compute(
        self, digest: str, compute: Callable[[], dict]
    ) -> Tuple[dict, bool]:
        """``(payload, was_hit)`` — computing and writing back on a miss."""
        cached = self.get(digest)
        if cached is not None:
            return cached, True
        payload = compute()
        self.put(digest, payload)
        return payload, False
