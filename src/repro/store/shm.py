"""Zero-copy numpy shipping over ``multiprocessing.shared_memory``.

The process sweep backend sends each worker a tiny picklable task; the
*data* a point function needs (generated problem matrices, staged input
panels) can be megabytes per array and identical across every point of a
grid.  Pickling that through the executor would copy it per task;
:class:`SharedNDArray` instead places each array in a POSIX shared-memory
segment once, and workers attach read-only views — zero copies after the
initial export, regardless of how many points the grid has.

Lifecycle: the parent calls :func:`share_arrays` before building the pool
and :meth:`SharedNDArray.unlink` (via :func:`unlink_arrays`) after the
pool drains; workers attach in the pool initializer via
:func:`attach_arrays`, which parks the views in a module global that
:func:`get_shared_arrays` hands to point functions.  Attached views keep
their segment alive until the worker exits, so the parent's unlink is
safe the moment ``run()`` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "SharedNDArray",
    "share_arrays",
    "attach_arrays",
    "unlink_arrays",
    "get_shared_arrays",
]


@dataclass(frozen=True)
class _Handle:
    """Picklable description of one shared segment (what workers receive)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedNDArray:
    """One numpy array backed by a named shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedNDArray":
        """Copy ``source`` into a fresh segment (the one copy there is)."""
        shm = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
        out = cls(shm, source.shape, source.dtype, owner=True)
        out.array[...] = source
        return out

    @classmethod
    def attach(cls, handle: _Handle) -> "SharedNDArray":
        """Map an existing segment (worker side); the view copies nothing."""
        shm = shared_memory.SharedMemory(name=handle.name)
        return cls(shm, handle.shape, handle.dtype, owner=False)

    @property
    def handle(self) -> _Handle:
        return _Handle(self._shm.name, tuple(self.array.shape), str(self.array.dtype))

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        # release the buffer view before closing the mapping
        self.array = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after every worker detached)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass


def share_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, SharedNDArray]:
    """Export a dict of arrays into shared memory (parent side)."""
    shared: Dict[str, SharedNDArray] = {}
    try:
        for name, arr in arrays.items():
            shared[name] = SharedNDArray.create(np.ascontiguousarray(arr))
    except BaseException:
        unlink_arrays(shared)
        raise
    return shared


def unlink_arrays(shared: Dict[str, SharedNDArray]) -> None:
    """Tear down every segment exported by :func:`share_arrays`."""
    for s in shared.values():
        s.unlink()


#: worker-side registry of attached views, filled by the pool initializer
_WORKER_ARRAYS: Optional[Dict[str, np.ndarray]] = None
_WORKER_SEGMENTS: list = []


def attach_arrays(handles: Dict[str, _Handle]) -> None:
    """Pool-initializer hook: map every parent segment into this worker."""
    global _WORKER_ARRAYS
    views: Dict[str, np.ndarray] = {}
    for name, handle in handles.items():
        seg = SharedNDArray.attach(handle)
        _WORKER_SEGMENTS.append(seg)  # keep mappings alive for process life
        view = seg.array
        view.flags.writeable = False  # inputs are read-only by contract
        views[name] = view
    _WORKER_ARRAYS = views


def get_shared_arrays() -> Dict[str, np.ndarray]:
    """The attached input arrays (empty dict outside a process sweep)."""
    return _WORKER_ARRAYS or {}
