"""Persistent content-addressed result store.

One :class:`ResultStore` is a directory of records, each addressed by a
:func:`repro.core.digest.config_digest` of the full configuration that
produced it.  A record is:

* ``<root>/<dd>/<digest>.json`` — the scalar payload plus provenance
  (repro version, kind, array checksum); written last, atomically, so its
  presence *is* the commit point;
* ``<root>/<dd>/<digest>.npz`` — optional numpy arrays (e.g. a cached
  potential vector), written (atomically) before the JSON.

``<dd>`` is the first two digest hex chars — the usual content-addressed
fan-out that keeps directory listings short at hundreds of thousands of
records.

Atomicity: every write lands in a same-directory temp file and is
published with ``os.replace``, so concurrent writers of the same digest
race benignly (last writer wins with identical bytes — the digest pins
the content) and a killed writer leaves only a temp file that ``verify``
sweeps away.  Readers treat any unreadable or checksum-mismatched record
as a miss and recompute; the cache can only cost time, never correctness.

Counters (hits/misses/writes/evictions) accumulate on the instance and
feed the :mod:`repro.obs` metrics registry live under ``store.*`` when
collection is armed.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union
from zipfile import BadZipFile

import numpy as np

from .._version import __version__
from ..obs.log import get_logger, log_event
from ..obs.metrics import counter_inc
from ..obs.tracer import span

__all__ = ["StoreStats", "ResultStore", "default_store"]

_log = get_logger("store")

#: environment variable naming the default persistent cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_TMP_PREFIX = ".tmp-"


@dataclass
class StoreStats:
    """Counters accumulated by one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    verify_failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "verify_failures": self.verify_failures,
        }


@dataclass
class VerifyReport:
    """Outcome of one :meth:`ResultStore.verify` pass."""

    checked: int = 0
    problems: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _sha256_file(path: pathlib.Path) -> str:
    import hashlib

    h = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class ResultStore:
    """Directory-backed content-addressed cache of experiment results.

    ``max_records``, when set, bounds the record count: a :meth:`put` that
    grows the store beyond the bound evicts the oldest records (by
    modification time) until it fits — the figure benches re-touch their
    grid on every run, so mtime order approximates LRU.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        max_records: Optional[int] = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be positive (or None for unbounded)")
        self.root = pathlib.Path(root)
        self.max_records = max_records
        self.stats = StoreStats()

    # -- paths -------------------------------------------------------------
    def _json_path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _npz_path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.npz"

    def _atomic_write_bytes(self, path: pathlib.Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=_TMP_PREFIX, dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            pathlib.Path(tmp).unlink(missing_ok=True)
            raise

    # -- read --------------------------------------------------------------
    def get(self, digest: str) -> Optional[Tuple[dict, Dict[str, np.ndarray]]]:
        """Load one record; ``None`` on miss *or* any corruption.

        Returns ``(payload, arrays)`` — ``arrays`` is empty when the record
        carries no numpy data.  A record whose JSON is unreadable or whose
        NPZ is missing/corrupt/checksum-mismatched counts as a miss (and a
        ``verify_failure``): the caller recomputes and overwrites it.
        """
        jpath = self._json_path(digest)
        with span("store.get", digest=digest[:12]):
            try:
                doc = json.loads(jpath.read_text())
            except FileNotFoundError:
                self._miss(digest)
                return None
            except (OSError, json.JSONDecodeError) as exc:
                self._corrupt(digest, f"unreadable JSON: {exc}")
                return None
            if not isinstance(doc, dict) or "payload" not in doc:
                self._corrupt(digest, "record missing payload")
                return None
            arrays: Dict[str, np.ndarray] = {}
            if doc.get("arrays_sha256") is not None:
                npath = self._npz_path(digest)
                try:
                    if _sha256_file(npath) != doc["arrays_sha256"]:
                        self._corrupt(digest, "NPZ checksum mismatch")
                        return None
                    with np.load(npath) as npz:
                        arrays = {name: npz[name] for name in npz.files}
                except (OSError, ValueError, BadZipFile) as exc:
                    self._corrupt(digest, f"unreadable NPZ: {exc}")
                    return None
            self.stats.hits += 1
            counter_inc("store.hits")
            return doc["payload"], arrays

    def contains(self, digest: str) -> bool:
        """Whether a committed record exists (no payload load, no counters)."""
        return self._json_path(digest).exists()

    def _miss(self, digest: str) -> None:
        self.stats.misses += 1
        counter_inc("store.misses")

    def _corrupt(self, digest: str, why: str) -> None:
        self.stats.misses += 1
        self.stats.verify_failures += 1
        counter_inc("store.misses")
        counter_inc("store.verify_failures")
        log_event(_log, 30, "store_corrupt_record", digest=digest[:12], why=why)

    # -- write -------------------------------------------------------------
    def put(
        self,
        digest: str,
        payload: dict,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        """Persist one record atomically (arrays first, JSON last)."""
        with span("store.put", digest=digest[:12]):
            arrays_sha = None
            if arrays:
                import io

                buf = io.BytesIO()
                np.savez(buf, **arrays)
                data = buf.getvalue()
                self._atomic_write_bytes(self._npz_path(digest), data)
                arrays_sha = _sha256_file(self._npz_path(digest))
            doc = {
                "digest": digest,
                "repro_version": __version__,
                "arrays_sha256": arrays_sha,
                "payload": payload,
            }
            self._atomic_write_bytes(
                self._json_path(digest),
                (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"),
            )
        self.stats.writes += 1
        counter_inc("store.writes")
        if self.max_records is not None:
            self._evict_to(self.max_records)

    def _evict_to(self, bound: int) -> None:
        records = self._record_paths()
        if len(records) <= bound:
            return
        records.sort(key=lambda p: p.stat().st_mtime)
        for jpath in records[: len(records) - bound]:
            digest = jpath.stem
            jpath.unlink(missing_ok=True)
            self._npz_path(digest).unlink(missing_ok=True)
            self.stats.evictions += 1
            counter_inc("store.evictions")
            log_event(_log, 20, "store_evict", digest=digest[:12])

    # -- maintenance -------------------------------------------------------
    def _record_paths(self) -> List[pathlib.Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self._record_paths())

    def size_bytes(self) -> int:
        """Total bytes on disk across all record files."""
        total = 0
        if self.root.exists():
            for p in self.root.glob("??/*"):
                if p.is_file():
                    total += p.stat().st_size
        return total

    def kinds(self) -> Dict[str, int]:
        """Record counts by the ``kind`` field of each payload digest doc."""
        out: Dict[str, int] = {}
        for jpath in self._record_paths():
            try:
                doc = json.loads(jpath.read_text())
                kind = doc.get("payload", {}).get("kind", "?")
            except (OSError, json.JSONDecodeError, AttributeError):
                kind = "<corrupt>"
            out[kind] = out.get(kind, 0) + 1
        return out

    def verify(self, fix: bool = False) -> VerifyReport:
        """Audit every record; optionally delete the broken ones.

        Checks per record: JSON readable, digest field matches the file
        name, NPZ present and matching its recorded checksum.  Stray temp
        files from killed writers are reported (and removed under
        ``fix=True``).
        """
        report = VerifyReport()

        def bad(jpath: pathlib.Path, digest: str, why: str) -> None:
            report.problems.append(f"{digest[:12]}: {why}")
            if fix:
                jpath.unlink(missing_ok=True)
                self._npz_path(digest).unlink(missing_ok=True)
                report.removed.append(digest)

        for jpath in self._record_paths():
            digest = jpath.stem
            report.checked += 1
            try:
                doc = json.loads(jpath.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                bad(jpath, digest, f"unreadable JSON ({exc})")
                continue
            if doc.get("digest") != digest:
                bad(jpath, digest, "digest field does not match file name")
                continue
            sha = doc.get("arrays_sha256")
            if sha is not None:
                npath = self._npz_path(digest)
                if not npath.exists():
                    bad(jpath, digest, "NPZ missing")
                    continue
                if _sha256_file(npath) != sha:
                    bad(jpath, digest, "NPZ checksum mismatch")
                    continue
        if self.root.exists():
            for tmp in self.root.glob(f"??/{_TMP_PREFIX}*"):
                report.problems.append(f"stray temp file {tmp.name}")
                if fix:
                    tmp.unlink(missing_ok=True)
                    report.removed.append(tmp.name)
        return report

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for jpath in self._record_paths():
            digest = jpath.stem
            jpath.unlink(missing_ok=True)
            self._npz_path(digest).unlink(missing_ok=True)
            removed += 1
        return removed


def default_store() -> Optional[ResultStore]:
    """Store named by ``$REPRO_CACHE_DIR``, or ``None`` when unset."""
    root = os.environ.get(CACHE_DIR_ENV)
    if not root:
        return None
    return ResultStore(root)
