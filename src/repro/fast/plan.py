"""Interaction planning: which box pairs, evaluated how.

A plan classifies every unpruned (target box, source box) pair into one
of four evaluation paths, by estimated cost:

* ``direct``  — dense evaluation through the fused batched engine;
  cost ``m_t * n_s``.  Always available, and the only path for boxes
  whose geometry violates the expansion's ``rho`` bound (tree leaves in
  sparse regions).
* ``s2t``     — the source box's Hermite expansion evaluated at each
  target; cost ``m_t * p^K`` (plus the once-per-box coefficient
  formation ``n_s * p^K``).
* ``s2l``     — sources accumulated into the target box's local Taylor
  expansion; cost ``n_s * p^K`` (plus one ``m_t * p^K`` local
  evaluation per target box).
* ``h2l``     — Hermite-to-local translation (uniform grid only, where
  box-center offsets repeat across the stencil and the translation
  factorizes into per-dimension mode products); cost ``~K * p^(K+1)``
  per pair, independent of occupancy.

Pairs whose minimum box separation exceeds the cutoff radius are pruned
entirely: every pruned source contributes less than ``eps_tail`` per
unit weight, so the total pruning error is below ``Q * eps/2`` and the
truncation budget gets the other ``eps/2``
(:func:`repro.fast.hermite.truncation_bound`).

The plan also carries the modelled work fraction versus the dense
``M * N`` evaluation — the number the auto crossover, the energy meter,
and the bench report all share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import InvalidProblemError
from .boxes import BoxSet, adaptive_tree, uniform_boxes
from .hermite import choose_order, cutoff_radius, delta_from_bandwidth

__all__ = [
    "FastPlan",
    "build_plan",
    "modelled_work_fraction",
    "DEFAULT_SIDE_FACTOR",
    "DEFAULT_LEAF_SIZE",
    "AUTO_MIN_INTERACTIONS",
]

#: uniform box side as a multiple of delta (rho = SIDE_FACTOR / 2)
DEFAULT_SIDE_FACTOR = 1.0
#: adaptive-tree split threshold
DEFAULT_LEAF_SIZE = 256
#: below this many dense interactions, method="auto" stays dense — the
#: planning/binning overhead cannot pay for itself (calibrated by the
#: crossover curve in benchmarks/results/BENCH_fast.json)
AUTO_MIN_INTERACTIONS = 1 << 25

#: relative per-op weight of the factorized h2l mode products (BLAS-shaped)
_C_H2L = 0.25


@dataclass
class FastPlan:
    """Everything the engine needs to execute one hierarchical solve."""

    method: str  # "fgt" | "treecode"
    eps: float
    delta: float
    p: int  # truncation order per dimension
    r_cut: float
    boxes: BoxSet
    pairs_direct: List[Tuple[int, int]] = field(default_factory=list)
    pairs_s2t: List[Tuple[int, int]] = field(default_factory=list)
    pairs_s2l: List[Tuple[int, int]] = field(default_factory=list)
    #: uniform grid only: coordinate offset -> (target ordinals, source ordinals)
    h2l_by_offset: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    #: source boxes needing Hermite coefficients / target boxes needing locals
    a_boxes: List[int] = field(default_factory=list)
    b_boxes: List[int] = field(default_factory=list)
    work_ops: float = 0.0
    dense_ops: float = 0.0

    @property
    def work_fraction(self) -> float:
        """Modelled ops relative to the dense ``M * N`` evaluation."""
        return self.work_ops / self.dense_ops if self.dense_ops > 0 else 1.0

    def summary(self) -> dict:
        h2l_pairs = sum(len(t) for t, _ in self.h2l_by_offset.values())
        return {
            "method": self.method,
            "eps": self.eps,
            "p": self.p,
            "boxes": self.boxes.n_boxes,
            "pairs_direct": len(self.pairs_direct),
            "pairs_s2t": len(self.pairs_s2t),
            "pairs_s2l": len(self.pairs_s2l),
            "pairs_h2l": h2l_pairs,
            "work_ops": self.work_ops,
            "dense_ops": self.dense_ops,
            "work_fraction": self.work_fraction,
        }


def _min_box_distance(
    c1: np.ndarray, s1: float, c2: np.ndarray, s2: float
) -> float:
    gap = np.maximum(np.abs(c1 - c2) - 0.5 * (s1 + s2), 0.0)
    return float(np.sqrt((gap * gap).sum()))


def _stencil_offsets(K: int, side: float, r_cut: float) -> List[Tuple[int, ...]]:
    """Grid offsets whose minimum box separation is within the cutoff."""
    reach = int(math.floor(r_cut / side)) + 1
    ranges = [np.arange(-reach, reach + 1)] * K
    mesh = np.stack(np.meshgrid(*ranges, indexing="ij"), axis=-1).reshape(-1, K)
    gap = np.maximum(np.abs(mesh) - 1, 0) * side
    keep = np.sqrt((gap * gap).sum(axis=1)) <= r_cut
    return [tuple(int(v) for v in row) for row in mesh[keep]]


def _classify_uniform(plan: FastPlan) -> None:
    """Cost-pick a path for every unpruned pair of the uniform grid."""
    boxes = plan.boxes
    K = boxes.boxes[0].center.shape[0]
    pK = float(plan.p**K)
    h2l_cost = 2.0 * K * float(plan.p ** (K + 1)) * _C_H2L
    offsets = _stencil_offsets(K, boxes.side, plan.r_cut)

    h2l_accum: Dict[Tuple[int, ...], Tuple[List[int], List[int]]] = {}
    a_set: set = set()
    b_set: set = set()
    work = 0.0
    for ti, tbox in enumerate(boxes.boxes):
        m_t = len(tbox.targets)
        if m_t == 0:
            continue
        assert tbox.coords is not None
        for off in offsets:
            coords = tuple(tbox.coords[k] + off[k] for k in range(K))
            si = boxes.by_coords.get(coords)
            if si is None:
                continue
            n_s = len(boxes.boxes[si].sources)
            if n_s == 0:
                continue
            costs = {
                "direct": float(m_t) * n_s,
                "s2t": m_t * pK,
                "s2l": n_s * pK,
                "h2l": h2l_cost,
            }
            path = min(costs, key=costs.get)  # ties: fixed key order
            work += costs[path]
            if path == "direct":
                plan.pairs_direct.append((ti, si))
            elif path == "s2t":
                plan.pairs_s2t.append((ti, si))
                a_set.add(si)
            elif path == "s2l":
                plan.pairs_s2l.append((ti, si))
                b_set.add(ti)
            else:
                h2l_accum.setdefault(off, ([], []))[0].append(ti)
                h2l_accum[off][1].append(si)
                a_set.add(si)
                b_set.add(ti)
    plan.h2l_by_offset = {
        off: (np.asarray(t, dtype=np.int64), np.asarray(s, dtype=np.int64))
        for off, (t, s) in sorted(h2l_accum.items())
    }
    _finish_amortized(plan, a_set, b_set, pK, work)


def _classify_tree(plan: FastPlan, valid_side: float) -> None:
    """Cost-pick paths over all leaf pairs, pruned by box separation.

    Leaf geometry is irregular, so the pair scan is a vectorized
    all-pairs distance test per target leaf (O(L^2) with L leaves —
    leaves are coarse, so L is thousands, not millions).  h2l is not
    available here: the translation tables key on repeating grid
    offsets, which irregular leaf centers do not provide.
    """
    boxes = plan.boxes
    K = boxes.boxes[0].center.shape[0]
    pK = float(plan.p**K)
    centers = np.stack([b.center for b in boxes.boxes])
    sides = np.asarray([b.side for b in boxes.boxes])
    n_src = np.asarray([len(b.sources) for b in boxes.boxes])
    a_set: set = set()
    b_set: set = set()
    work = 0.0
    for ti, tbox in enumerate(boxes.boxes):
        m_t = len(tbox.targets)
        if m_t == 0:
            continue
        gap = np.maximum(
            np.abs(centers - tbox.center[None, :]) - 0.5 * (sides[:, None] + tbox.side),
            0.0,
        )
        near = np.sqrt((gap * gap).sum(axis=1)) <= plan.r_cut
        t_valid = tbox.side <= valid_side
        for si in np.nonzero(near & (n_src > 0))[0]:
            n_s = int(n_src[si])
            costs = {"direct": float(m_t) * n_s}
            if boxes.boxes[si].side <= valid_side:
                costs["s2t"] = m_t * pK
            if t_valid:
                costs["s2l"] = n_s * pK
            path = min(costs, key=costs.get)
            work += costs[path]
            if path == "direct":
                plan.pairs_direct.append((ti, int(si)))
            elif path == "s2t":
                plan.pairs_s2t.append((ti, int(si)))
                a_set.add(int(si))
            else:
                plan.pairs_s2l.append((ti, int(si)))
                b_set.add(ti)
    _finish_amortized(plan, a_set, b_set, pK, work)


def _finish_amortized(
    plan: FastPlan, a_set: set, b_set: set, pK: float, work: float
) -> None:
    plan.a_boxes = sorted(a_set)
    plan.b_boxes = sorted(b_set)
    # once-per-box costs: Hermite coefficient formation and local evaluation
    work += sum(len(plan.boxes.boxes[i].sources) * pK for i in plan.a_boxes)
    work += sum(len(plan.boxes.boxes[i].targets) * pK for i in plan.b_boxes)
    plan.work_ops = work


def build_plan(
    targets: np.ndarray,
    sources: np.ndarray,
    h: float,
    eps: float,
    method: str,
    side_factor: float = DEFAULT_SIDE_FACTOR,
    leaf_size: int = DEFAULT_LEAF_SIZE,
) -> FastPlan:
    """Decompose, enumerate, and classify one problem's interactions.

    ``targets`` is (M, K) evaluation points (rows of ``A``), ``sources``
    is (N, K) weighted points (columns of ``B``).  ``method`` must be
    ``"fgt"`` or ``"treecode"`` — the auto/dense decision happens in the
    engine, before any plan is built.
    """
    if method not in ("fgt", "treecode"):
        raise InvalidProblemError(f"unknown plan method {method!r}; use fgt | treecode")
    if eps <= 0 or eps >= 1:
        raise InvalidProblemError("eps must be in (0, 1)")
    delta = delta_from_bandwidth(h)
    K = targets.shape[1]
    eps_tail = eps / 2.0
    eps_trunc = eps / 2.0
    rho = 0.5 * side_factor
    # the fgt path may translate expansions (h2l), which needs the larger
    # composed bound; the treecode path only ever stacks one truncation
    p = choose_order(eps_trunc, rho, K, translation=(method == "fgt"))
    r_cut = cutoff_radius(eps_tail, delta)
    side = side_factor * delta

    if method == "fgt":
        boxes = uniform_boxes(targets, sources, side)
    else:
        boxes = adaptive_tree(targets, sources, leaf_size, min_side=side)

    plan = FastPlan(
        method=method,
        eps=eps,
        delta=delta,
        p=p,
        r_cut=r_cut,
        boxes=boxes,
        dense_ops=float(targets.shape[0]) * sources.shape[0],
    )
    if method == "fgt":
        _classify_uniform(plan)
    else:
        _classify_tree(plan, valid_side=side)
    return plan


def modelled_work_fraction(
    M: int, N: int, K: int, h: float, eps: float = 1e-6
) -> float:
    """Analytic work fraction of the hierarchical path vs dense ``M * N``.

    A closed-form stand-in for :attr:`FastPlan.work_fraction` when no
    point data is available (the serving energy model): assumes points
    uniform in the unit cube, so each box holds ``N / boxes`` sources
    and the stencil covers ``~(2 r_cut/side + 1)^K`` neighbours.  Capped
    at 1 — the hierarchical path is never modelled as costlier than
    dense (the auto crossover would have picked dense).
    """
    if min(M, N, K) < 1:
        raise InvalidProblemError("M, N, K must be positive")
    delta = delta_from_bandwidth(h)
    side = DEFAULT_SIDE_FACTOR * delta
    rho = 0.5 * DEFAULT_SIDE_FACTOR
    try:
        p = choose_order(eps / 2.0, rho, K, translation=True)
    except InvalidProblemError:
        return 1.0
    r_cut = cutoff_radius(eps / 2.0, delta)
    n_side = max(1, math.ceil(1.0 / side))
    boxes = float(n_side**K)
    stencil = min(boxes, float((2 * math.ceil(r_cut / side) + 1) ** K))
    m_per, n_per = M / boxes, N / boxes
    pK = float(p**K)
    h2l_cost = 2.0 * K * float(p ** (K + 1)) * _C_H2L
    per_pair = min(m_per * n_per, m_per * pK, n_per * pK, h2l_cost)
    work = boxes * (stencil * per_pair + n_per * pK + m_per * pK)
    return min(1.0, work / (float(M) * N))
