"""Hierarchical fast-summation execution.

The engine runs a :class:`~repro.fast.plan.FastPlan` in two halves:

* **far field** — Hermite/Taylor expansion arithmetic, always in
  float64 (the expansions are the accuracy-critical path; the final
  cast to the problem dtype costs one dtype rounding, far below any
  requested ``eps``).  The four paths are executed as grouped
  vectorized passes: per-source-box coefficient formation (one small
  GEMM per box), per-offset batched Hermite-to-local translations
  (per-dimension mode products against memoised translation tables),
  per-pair ``s2t``/``s2l`` evaluations, one local-expansion evaluation
  per target box.

* **near field** — the ``direct`` pairs, grouped per target box and
  lowered as small dense :class:`~repro.core.problem.ProblemData`
  instances through :class:`~repro.core.fused.FusedKernelSummation`'s
  batched engine — the paper's kernel stays the inner primitive.  With
  ``workers > 1`` the per-box subproblems are scheduled through
  :class:`~repro.experiments.sweep.ResilientSweep` (thread or process
  backend); the process backend ships ``A``/``B``/``W`` and the
  gathered index arrays zero-copy via :mod:`repro.store.shm`, so worker
  dispatch cost is per-task-constant regardless of problem size.

Every phase runs under a ``fast.*`` span, so a traced run shows bin /
plan / far / near wall-clock side by side (the serving layer surfaces
the same spans per request).

The public entry point is :func:`run_fast`; the ``method="auto"``
policy (dense below the crossover, treecode for heavily clustered
clouds, fgt otherwise) lives in :func:`decide_method`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.fused import FusedKernelSummation
from ..core.problem import ProblemData, ProblemSpec
from ..core.tiling import PAPER_TILING, TilingConfig
from ..errors import InvalidProblemError
from ..obs.metrics import counter_inc
from ..obs.tracer import span
from .hermite import expansion_tables, hermite_functions
from .plan import (
    AUTO_MIN_INTERACTIONS,
    DEFAULT_LEAF_SIZE,
    DEFAULT_SIDE_FACTOR,
    FastPlan,
    build_plan,
)

__all__ = ["FastReport", "run_fast", "decide_method"]

#: dimensions the tensor expansions stay practical for (p^K coefficients)
MAX_EXPANSION_DIMS = 3

#: fraction of all sources one uniform cell must hold before auto calls
#: the cloud clustered and prefers the adaptive tree
_CLUSTER_MASS_FRACTION = 0.25


@dataclass
class FastReport:
    """What one :func:`run_fast` call actually did."""

    method: str  # "dense" | "fgt" | "treecode"
    eps: float
    p: int = 0
    plan_summary: Optional[dict] = None
    near_pairs: int = 0
    near_workers: int = 1
    near_backend: str = "inline"
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "eps": self.eps,
            "p": self.p,
            "plan": self.plan_summary,
            "near_pairs": self.near_pairs,
            "near_workers": self.near_workers,
            "near_backend": self.near_backend,
            "reasons": list(self.reasons),
        }


def decide_method(data: ProblemData, eps: float, min_interactions: int) -> Tuple[str, List[str]]:
    """The ``method="auto"`` policy; returns (method, reasons)."""
    spec = data.spec
    reasons: List[str] = []
    if spec.kernel != "gaussian":
        reasons.append(f"kernel {spec.kernel!r} has no Hermite expansion here")
        return "dense", reasons
    if spec.K > MAX_EXPANSION_DIMS:
        reasons.append(f"K={spec.K} exceeds expansion dimension limit {MAX_EXPANSION_DIMS}")
        return "dense", reasons
    if spec.interaction_count < min_interactions:
        reasons.append(
            f"M*N={spec.interaction_count} below crossover {min_interactions}"
        )
        return "dense", reasons
    # clustered clouds: uniform cells would concentrate points in few
    # boxes; the adaptive tree splits those. A cheap source-side bin
    # decides (the skew threshold is a performance heuristic — both
    # methods meet eps).
    from .hermite import delta_from_bandwidth

    side = DEFAULT_SIDE_FACTOR * delta_from_bandwidth(spec.h)
    S = data.B.T.astype(np.float64)
    cells = np.floor((S - S.min(axis=0)[None, :]) / side).astype(np.int64)
    _, counts = np.unique(cells, axis=0, return_counts=True)
    top = counts.max() / counts.sum()
    if len(counts) >= 8 and top > _CLUSTER_MASS_FRACTION:
        reasons.append(
            f"clustered sources (one cell holds {100 * top:.0f}% of them)"
        )
        return "treecode", reasons
    reasons.append("gaussian kernel above crossover")
    return "fgt", reasons


# -- far field ---------------------------------------------------------------

def _dim_powers(v: np.ndarray, p: int, inv_fact: Optional[np.ndarray]) -> List[np.ndarray]:
    """Per-dimension monomials ``v[:, d]^n`` (times ``1/n!`` when given)."""
    out: List[np.ndarray] = []
    for d in range(v.shape[1]):
        P = np.empty((v.shape[0], p), dtype=np.float64)
        P[:, 0] = 1.0
        for n in range(1, p):
            np.multiply(P[:, n - 1], v[:, d], out=P[:, n])
        if inv_fact is not None:
            P *= inv_fact[None, :]
        out.append(P)
    return out


def _dim_hermites(v: np.ndarray, p: int) -> List[np.ndarray]:
    """Per-dimension Hermite functions ``h_n(v[:, d])`` as (n, p) arrays."""
    return [np.ascontiguousarray(hermite_functions(v[:, d], p).T) for d in range(v.shape[1])]


class _FarField:
    """Far-field evaluator: owns the float64 accumulator and the caches."""

    #: memoised per-offset translation tables, keyed
    #: (p, side_factor-quantized offset); shared across instances so a
    #: sweep of same-shaped solves builds each table once
    _H2L_TABLES: Dict[Tuple, List[np.ndarray]] = {}

    def __init__(self, plan: FastPlan, T: np.ndarray, S: np.ndarray, w: np.ndarray):
        self.plan = plan
        self.T = T
        self.S = S
        self.w = w
        self.K = T.shape[1]
        self.V = np.zeros(len(T), dtype=np.float64)
        self.tables = expansion_tables(plan.p)
        self.inv_fact = self.tables.inv_factorial.astype(np.float64)
        self.sign = self.tables.sign.astype(np.float64)
        self.A: Dict[int, np.ndarray] = {}
        self.B: Dict[int, np.ndarray] = {}

    def _offsets(self, idx: np.ndarray, center: np.ndarray) -> np.ndarray:
        return (idx - center[None, :]) / self.plan.delta

    def form_a(self) -> None:
        p = self.plan.p
        boxes = self.plan.boxes
        for si in self.plan.a_boxes:
            box = boxes.boxes[si]
            v = self._offsets(self.S[box.sources], box.center)
            P = _dim_powers(v, p, self.inv_fact)
            ws = self.w[box.sources]
            if self.K == 1:
                A = P[0].T @ ws
            elif self.K == 2:
                A = P[0].T @ (ws[:, None] * P[1])
            else:
                A = np.einsum("ja,jb,jc,j->abc", P[0], P[1], P[2], ws, optimize=True)
            self.A[si] = A
        shape = (p,) * self.K
        for ti in self.plan.b_boxes:
            self.B[ti] = np.zeros(shape, dtype=np.float64)

    def run_s2l(self) -> None:
        """Sources accumulated into target-box local expansions."""
        p = self.plan.p
        boxes = self.plan.boxes
        for ti, si in self.plan.pairs_s2l:
            tbox, sbox = boxes.boxes[ti], boxes.boxes[si]
            v = self._offsets(self.S[sbox.sources], tbox.center)
            H = _dim_hermites(v, p)
            ws = self.w[sbox.sources]
            B = self.B[ti]
            if self.K == 1:
                contrib = H[0].T @ ws
            elif self.K == 2:
                contrib = H[0].T @ (ws[:, None] * H[1])
            else:
                contrib = np.einsum("ja,jb,jc,j->abc", H[0], H[1], H[2], ws, optimize=True)
            # B_beta = (1/beta!) sum_j w_j h_beta(v_j): fold 1/beta! per dim
            for d in range(self.K):
                sl = [None] * self.K
                sl[d] = slice(None)
                contrib = contrib * self.inv_fact[tuple(sl)]
            B += contrib

    def _h2l_tables(self, off: Tuple[int, ...], side_factor: float) -> List[np.ndarray]:
        p = self.plan.p
        key = (p, round(side_factor, 12), off)
        hit = self._H2L_TABLES.get(key)
        if hit is not None:
            return hit
        idx = np.arange(p)
        pair_orders = idx[:, None] + idx[None, :]  # (beta, alpha) -> order
        tabs: List[np.ndarray] = []
        for d in range(len(off)):
            # source coords = target coords + off, so the translation
            # argument (c_T - c_S)/delta is the *negated* offset
            c = -off[d] * side_factor
            hvals = hermite_functions(np.asarray(c, dtype=np.float64), 2 * p - 1)
            Td = hvals[pair_orders] * (self.sign * self.inv_fact)[:, None]
            tabs.append(np.ascontiguousarray(Td))
        self._H2L_TABLES[key] = tabs
        return tabs

    def run_h2l(self) -> None:
        """Batched Hermite-to-local translations, one pass per offset."""
        boxes = self.plan.boxes
        side_factor = boxes.side / self.plan.delta
        for off, (t_ids, s_ids) in self.plan.h2l_by_offset.items():
            tabs = self._h2l_tables(off, side_factor)
            A_stack = np.stack([self.A[int(s)] for s in s_ids])
            if self.K == 1:
                contrib = A_stack @ tabs[0].T
            elif self.K == 2:
                contrib = np.einsum("xa,nab,yb->nxy", tabs[0], A_stack, tabs[1], optimize=True)
            else:
                contrib = np.einsum(
                    "xa,yb,zc,nabc->nxyz", tabs[0], tabs[1], tabs[2], A_stack, optimize=True
                )
            for n, ti in enumerate(t_ids):
                self.B[int(ti)] += contrib[n]

    def run_s2t(self) -> None:
        """Source-box Hermite expansions evaluated directly at targets."""
        p = self.plan.p
        boxes = self.plan.boxes
        for ti, si in self.plan.pairs_s2t:
            tbox, sbox = boxes.boxes[ti], boxes.boxes[si]
            u = self._offsets(self.T[tbox.targets], sbox.center)
            H = _dim_hermites(u, p)
            A = self.A[si]
            if self.K == 1:
                vals = H[0] @ A
            elif self.K == 2:
                vals = ((H[0] @ A) * H[1]).sum(axis=1)
            else:
                vals = np.einsum("ia,ib,ic,abc->i", H[0], H[1], H[2], A, optimize=True)
            self.V[tbox.targets] += vals

    def run_l2t(self) -> None:
        """Each target box's accumulated local expansion, evaluated once."""
        p = self.plan.p
        boxes = self.plan.boxes
        for ti in self.plan.b_boxes:
            tbox = boxes.boxes[ti]
            u = self._offsets(self.T[tbox.targets], tbox.center)
            U = _dim_powers(u, p, None)
            B = self.B[ti]
            if self.K == 1:
                vals = U[0] @ B
            elif self.K == 2:
                vals = ((U[0] @ B) * U[1]).sum(axis=1)
            else:
                vals = np.einsum("ia,ib,ic,abc->i", U[0], U[1], U[2], B, optimize=True)
            self.V[tbox.targets] += vals

    def run(self) -> np.ndarray:
        with span("fast.far.coefficients", a_boxes=len(self.plan.a_boxes),
                  b_boxes=len(self.plan.b_boxes)):
            self.form_a()
        with span("fast.far.s2l", pairs=len(self.plan.pairs_s2l)):
            self.run_s2l()
        with span("fast.far.h2l", offsets=len(self.plan.h2l_by_offset)):
            self.run_h2l()
        with span("fast.far.s2t", pairs=len(self.plan.pairs_s2t)):
            self.run_s2t()
        with span("fast.far.l2t", boxes=len(self.plan.b_boxes)):
            self.run_l2t()
        return self.V


# -- near field --------------------------------------------------------------

def _near_groups(plan: FastPlan) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Direct pairs grouped per target box: (box ordinal, rows, cols)."""
    by_target: Dict[int, List[int]] = {}
    for ti, si in plan.pairs_direct:
        by_target.setdefault(ti, []).append(si)
    groups: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for ti in sorted(by_target):
        tbox = plan.boxes.boxes[ti]
        cols = np.concatenate(
            [plan.boxes.boxes[si].sources for si in sorted(by_target[ti])]
        )
        groups.append((ti, tbox.targets, cols))
    return groups


def _near_subproblem(
    data: ProblemData, rows: np.ndarray, cols: np.ndarray
) -> ProblemData:
    spec = data.spec
    sub_spec = ProblemSpec(
        M=len(rows), N=len(cols), K=spec.K, h=spec.h,
        kernel=spec.kernel, dtype=spec.dtype, seed=spec.seed,
    )
    return ProblemData(
        spec=sub_spec,
        A=np.ascontiguousarray(data.A[rows]),
        B=np.ascontiguousarray(data.B[:, cols]),
        W=np.ascontiguousarray(data.W[cols]),
    )


def _near_point(task) -> Tuple[int, np.ndarray]:  # noqa: ANN001 - SweepTask
    """Sweep point function: one near-field box batch -> its partial V.

    Module-level so the process backend can pickle it; inputs arrive
    through :func:`repro.store.shm.get_shared_arrays` (the thread and
    inline paths expose the parent's arrays through the same call).
    ``task.label`` is ``near:<group>`` and ``task.spec`` the subproblem
    shape; the index arrays select this group's rows/columns.
    """
    from ..store.shm import get_shared_arrays

    arrays = get_shared_arrays()
    i = int(task.label.split(":", 1)[1])
    r0, r1 = int(arrays["near_row_off"][i]), int(arrays["near_row_off"][i + 1])
    c0, c1 = int(arrays["near_col_off"][i]), int(arrays["near_col_off"][i + 1])
    rows = arrays["near_rows"][r0:r1]
    cols = arrays["near_cols"][c0:c1]
    data = ProblemData(
        spec=task.spec,
        A=np.ascontiguousarray(arrays["A"][rows]),
        B=np.ascontiguousarray(arrays["B"][:, cols]),
        W=np.ascontiguousarray(arrays["W"][cols]),
    )
    return i, FusedKernelSummation(engine="auto")(data)


def _run_near(
    data: ProblemData,
    plan: FastPlan,
    V: np.ndarray,
    tiling: TilingConfig,
    workers: Optional[int],
    backend: str,
) -> Tuple[int, str]:
    """Execute the direct pairs; returns (group count, backend used)."""
    groups = _near_groups(plan)
    if not groups:
        return 0, "inline"
    if workers is None or workers <= 1 or len(groups) < 2:
        runner = FusedKernelSummation(tiling, engine="auto")
        for _, rows, cols in groups:
            V[rows] += runner(_near_subproblem(data, rows, cols))
        return len(groups), "inline"

    from ..experiments.sweep import ResilientSweep, SweepTask
    from ..gpu.device import GTX970

    spec = data.spec
    row_cat = np.concatenate([rows for _, rows, _ in groups])
    col_cat = np.concatenate([cols for _, _, cols in groups])
    row_off = np.concatenate(
        ([0], np.cumsum([len(rows) for _, rows, _ in groups]))
    ).astype(np.int64)
    col_off = np.concatenate(
        ([0], np.cumsum([len(cols) for _, _, cols in groups]))
    ).astype(np.int64)
    tasks = [
        SweepTask(
            label=f"near:{g}",
            device=GTX970,
            spec=ProblemSpec(
                M=len(rows), N=len(cols), K=spec.K, h=spec.h,
                kernel=spec.kernel, dtype=spec.dtype, seed=spec.seed,
            ),
        )
        for g, (_, rows, cols) in enumerate(groups)
    ]
    sweep = ResilientSweep(
        journal=None,
        store=None,
        point_fn=_near_point,
        max_workers=workers,
        backend=backend,
        shared_inputs={
            "A": data.A, "B": data.B, "W": data.W,
            "near_rows": row_cat, "near_cols": col_cat,
            "near_row_off": row_off, "near_col_off": col_off,
        },
    )
    for g, partial in sweep.run(tasks):
        _, rows, _ = groups[g]
        V[rows] += partial
    return len(groups), backend


# -- entry point -------------------------------------------------------------

def run_fast(
    data: ProblemData,
    eps: float = 1e-6,
    method: str = "auto",
    tiling: TilingConfig = PAPER_TILING,
    workers: Optional[int] = None,
    backend: str = "thread",
    side_factor: float = DEFAULT_SIDE_FACTOR,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    min_interactions: int = AUTO_MIN_INTERACTIONS,
) -> Tuple[np.ndarray, FastReport]:
    """Hierarchical kernel summation with an ``eps * Q`` error contract.

    Returns ``(V, report)`` where ``V`` matches the problem dtype and
    ``report`` records the method actually used and the plan shape.
    The expansion guarantee ``max_i |V[i] - V_dense[i]| <= eps * Q``
    (``Q = sum |w_j|``) holds in exact arithmetic of the expansion
    scheme; dtype rounding of the inputs/outputs adds the usual
    machine-epsilon-level noise on top — float32 callers should not
    request ``eps`` below ~1e-4.
    """
    spec = data.spec
    if method not in ("auto", "dense", "fgt", "treecode"):
        raise InvalidProblemError(
            f"unknown method {method!r}; use auto | dense | fgt | treecode"
        )
    if method in ("fgt", "treecode"):
        if spec.kernel != "gaussian":
            raise InvalidProblemError(
                f"method {method!r} requires the gaussian kernel, not {spec.kernel!r}"
            )
        if spec.K > MAX_EXPANSION_DIMS:
            raise InvalidProblemError(
                f"method {method!r} supports K <= {MAX_EXPANSION_DIMS}, got K={spec.K}"
            )
    report = FastReport(method=method, eps=eps)
    if method == "auto":
        with span("fast.decide", M=spec.M, N=spec.N, K=spec.K):
            report.method, report.reasons = decide_method(data, eps, min_interactions)
    if report.method == "dense":
        counter_inc("fast.dense_fallbacks")
        with span("fast.dense", M=spec.M, N=spec.N):
            V = FusedKernelSummation(tiling, engine="auto")(data)
        return V, report

    counter_inc("fast.solves")
    T = data.A.astype(np.float64)
    S = data.B.T.astype(np.float64)
    w = data.W.astype(np.float64)
    with span("fast.plan", method=report.method, M=spec.M, N=spec.N, K=spec.K):
        plan = build_plan(
            T, S, spec.h, eps, report.method,
            side_factor=side_factor, leaf_size=leaf_size,
        )
    report.p = plan.p
    report.plan_summary = plan.summary()
    counter_inc("fast.boxes", plan.boxes.n_boxes)

    with span("fast.far", p=plan.p, boxes=plan.boxes.n_boxes):
        far = _FarField(plan, T, S, w).run()
    V = far.astype(spec.np_dtype)
    with span("fast.near", pairs=len(plan.pairs_direct)):
        report.near_pairs = len(plan.pairs_direct)
        groups, used = _run_near(data, plan, V, tiling, workers, backend)
        report.near_workers = workers or 1
        report.near_backend = used if (workers or 1) > 1 else "inline"
        counter_inc("fast.near_groups", groups)
    return V, report
