"""Accuracy measurement against the dense reference.

The fast engine's contract is ``max_i |V_fast[i] - V_dense[i]| <= eps * Q``
with ``Q = sum_j |w_j|`` — the classic FGT normalization, which makes the
bound independent of weight cancellation in the true sums.
:func:`max_rel_error` measures exactly that quantity; for problems where
the full dense reference is unaffordable, :func:`sampled_max_rel_error`
evaluates the reference on a deterministic row subset (the error bound is
per-row, so any subset measures the same contract on those rows).
"""

from __future__ import annotations

import numpy as np

from ..core.problem import ProblemData, ProblemSpec
from ..core.reference import direct
from ..errors import InvalidProblemError

__all__ = ["max_rel_error", "sampled_max_rel_error", "reference_rows"]


def max_rel_error(V: np.ndarray, V_ref: np.ndarray, W: np.ndarray) -> float:
    """``max_i |V[i] - V_ref[i]| / Q`` in float64."""
    V = np.asarray(V, dtype=np.float64)
    V_ref = np.asarray(V_ref, dtype=np.float64)
    if V.shape != V_ref.shape:
        raise InvalidProblemError(
            f"result shapes disagree: {V.shape} vs {V_ref.shape}"
        )
    q = float(np.abs(np.asarray(W, dtype=np.float64)).sum())
    if q == 0.0:
        return float(np.abs(V - V_ref).max(initial=0.0))
    return float(np.abs(V - V_ref).max(initial=0.0) / q)


def reference_rows(M: int, sample: int, seed: int = 0) -> np.ndarray:
    """A deterministic sorted row subset of size ``min(sample, M)``."""
    if sample >= M:
        return np.arange(M, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(M, size=sample, replace=False)).astype(np.int64)


def sampled_max_rel_error(
    data: ProblemData, V: np.ndarray, sample: int = 2048, seed: int = 0
) -> float:
    """:func:`max_rel_error` over a row subset, dense reference included.

    Builds a sub-problem holding only the sampled evaluation rows (all
    sources kept — each row's sum is exact) and runs the float64
    row-blocked :func:`repro.core.reference.direct` on it.
    """
    rows = reference_rows(data.spec.M, sample, seed=seed)
    spec = data.spec
    sub_spec = ProblemSpec(
        M=len(rows), N=spec.N, K=spec.K, h=spec.h,
        kernel=spec.kernel, dtype=spec.dtype, seed=spec.seed,
    )
    sub = ProblemData(
        spec=sub_spec,
        A=np.ascontiguousarray(data.A[rows]),
        B=data.B,
        W=data.W,
    )
    V_ref = direct(sub)
    return max_rel_error(np.asarray(V)[rows], V_ref, data.W)
