"""Accuracy measurement against the dense reference.

The fast engine's contract is ``max_i |V_fast[i] - V_dense[i]| <= eps * Q``
with ``Q = sum_j |w_j|`` — the classic FGT normalization, which makes the
bound independent of weight cancellation in the true sums.
:func:`max_rel_error` measures exactly that quantity; for problems where
the full dense reference is unaffordable, :func:`sampled_max_rel_error`
evaluates the reference on a deterministic row subset (the error bound is
per-row, so any subset measures the same contract on those rows).

:func:`static_contract` is the *static* counterpart: it composes the
advertised ``eps`` with the certified rounding-error bound of the dense
near-field engine (:mod:`repro.analysis.fpcert`), turning the measured
dense-relative contract into a provable true-value bound.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..core.problem import ProblemData, ProblemSpec
from ..core.reference import direct
from ..core.tiling import PAPER_TILING, TilingConfig
from ..errors import InvalidProblemError

__all__ = [
    "max_rel_error",
    "reference_rows",
    "sampled_max_rel_error",
    "static_contract",
]


def max_rel_error(V: np.ndarray, V_ref: np.ndarray, W: np.ndarray) -> float:
    """``max_i |V[i] - V_ref[i]| / Q`` in float64."""
    V = np.asarray(V, dtype=np.float64)
    V_ref = np.asarray(V_ref, dtype=np.float64)
    if V.shape != V_ref.shape:
        raise InvalidProblemError(
            f"result shapes disagree: {V.shape} vs {V_ref.shape}"
        )
    q = float(np.abs(np.asarray(W, dtype=np.float64)).sum())
    if q == 0.0:
        return float(np.abs(V - V_ref).max(initial=0.0))
    return float(np.abs(V - V_ref).max(initial=0.0) / q)


def reference_rows(M: int, sample: int, seed: int = 0) -> np.ndarray:
    """A deterministic sorted row subset of size ``min(sample, M)``."""
    if sample >= M:
        return np.arange(M, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(M, size=sample, replace=False)).astype(np.int64)


def sampled_max_rel_error(
    data: ProblemData, V: np.ndarray, sample: int = 2048, seed: int = 0
) -> float:
    """:func:`max_rel_error` over a row subset, dense reference included.

    Builds a sub-problem holding only the sampled evaluation rows (all
    sources kept — each row's sum is exact) and runs the float64
    row-blocked :func:`repro.core.reference.direct` on it.
    """
    rows = reference_rows(data.spec.M, sample, seed=seed)
    spec = data.spec
    sub_spec = ProblemSpec(
        M=len(rows), N=spec.N, K=spec.K, h=spec.h,
        kernel=spec.kernel, dtype=spec.dtype, seed=spec.seed,
    )
    sub = ProblemData(
        spec=sub_spec,
        A=np.ascontiguousarray(data.A[rows]),
        B=data.B,
        W=data.W,
    )
    V_ref = direct(sub)
    return max_rel_error(np.asarray(V)[rows], V_ref, data.W)


def static_contract(
    spec: ProblemSpec, eps: float, tiling: TilingConfig = PAPER_TILING
) -> Dict[str, Any]:
    """Certified composition of ``eps * sum|w|`` with the dense bound.

    Delegates to :func:`repro.analysis.fpcert.certify_fast_contract`:
    the returned payload carries the near-field dense engine's certified
    ``coeff_q``, the composed true-value coefficient ``eps + coeff_q + u``,
    and ``composes`` — whether the dense rounding term stays within the
    advertised eps (it does for float64 near fields at any practical eps;
    it cannot for float32 below ~1e-5).
    """
    # local import: repro.analysis.fpcert imports repro.core.fused, which
    # the fast package reaches through its engine anyway, but keeping the
    # analysis dependency out of this module's load path lets accuracy
    # measurement run without the analysis subsystem in play
    from ..analysis.fpcert import certify_fast_contract

    return certify_fast_contract(spec, eps, tiling)
