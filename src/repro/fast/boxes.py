"""Spatial decomposition: uniform FGT boxes and the adaptive tree.

Two decompositions share one representation (:class:`BoxSet`): a list of
boxes, each with a center, a side length, and CSR-style index slices
into a permutation of the target rows (``A``'s rows) and source columns
(``B``'s columns).  The uniform grid is the classic FGT layout — box
side tied to the Gaussian length scale ``delta`` so the per-dimension
scaled offset ``rho`` is bounded by construction; the adaptive
quadtree/octree subdivides only where points accumulate, which keeps
clustered clouds from funnelling everything through a handful of boxes.

Binning is numpy-vectorized end to end: one ``floor_divide`` per axis,
one ``np.unique(..., return_inverse=True)`` over the ravelled integer
coordinates, one ``argsort`` to group — no Python loop touches a point.
Only *occupied* boxes are materialized, so a tiny bandwidth (huge
logical grid) costs memory proportional to the number of points, never
to the grid volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InvalidProblemError

__all__ = ["Box", "BoxSet", "uniform_boxes", "adaptive_tree"]


@dataclass(frozen=True)
class Box:
    """One spatial cell with its resident targets and sources.

    ``targets`` indexes rows of ``A`` (evaluation points), ``sources``
    indexes columns of ``B`` (weighted points).  ``coords`` is the
    integer grid coordinate for uniform decompositions (``None`` for
    tree leaves, whose geometry is irregular).
    """

    center: np.ndarray  # (K,) float64
    side: float
    targets: np.ndarray  # int64 indices into A rows
    sources: np.ndarray  # int64 indices into B columns
    coords: Optional[Tuple[int, ...]] = None


@dataclass
class BoxSet:
    """A complete decomposition of one problem's points."""

    boxes: List[Box]
    #: uniform decompositions: grid coordinate -> box ordinal (empty for trees)
    by_coords: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    side: float = 0.0
    origin: Optional[np.ndarray] = None

    @property
    def n_boxes(self) -> int:
        return len(self.boxes)

    def occupancy(self) -> Tuple[int, int]:
        """(max, total) source occupancy across boxes."""
        counts = [len(b.sources) for b in self.boxes]
        return (max(counts) if counts else 0, sum(counts))


def _bin_indices(points: np.ndarray, origin: np.ndarray, side: float) -> np.ndarray:
    """Integer grid coordinates of ``points`` (n, K) on the uniform grid."""
    return np.floor((points - origin[None, :]) / side).astype(np.int64)


def _group(cells: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group rows of an (n, K) integer array.

    Returns ``(unique_cells, order, offsets)``: ``order`` permutes point
    indices so box ``i`` owns ``order[offsets[i]:offsets[i+1]]``.
    """
    uniq, inverse = np.unique(cells, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy >= 2.0 returns (n, 1) for axis=0
    order = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse, minlength=len(uniq))
    offsets = np.concatenate(([0], np.cumsum(counts)))
    return uniq, order, offsets


def uniform_boxes(
    targets: np.ndarray, sources: np.ndarray, side: float
) -> BoxSet:
    """The FGT grid: cubic cells of the given side over both point sets.

    ``targets`` is (M, K), ``sources`` is (N, K).  Cells are anchored at
    the joint coordinate minimum so both sets share one grid; only
    occupied cells become boxes, and a cell holding points of just one
    kind still appears (its other index array is empty).
    """
    if side <= 0:
        raise InvalidProblemError("box side must be positive")
    if targets.ndim != 2 or sources.ndim != 2 or targets.shape[1] != sources.shape[1]:
        raise InvalidProblemError(
            f"point sets disagree: targets {targets.shape}, sources {sources.shape}"
        )
    K = targets.shape[1]
    origin = np.minimum(targets.min(axis=0), sources.min(axis=0)).astype(np.float64)
    t_cells = _bin_indices(np.asarray(targets, dtype=np.float64), origin, side)
    s_cells = _bin_indices(np.asarray(sources, dtype=np.float64), origin, side)

    all_cells = np.concatenate([t_cells, s_cells], axis=0)
    uniq, order, offsets = _group(all_cells)
    M = len(t_cells)

    boxes: List[Box] = []
    by_coords: Dict[Tuple[int, ...], int] = {}
    for i in range(len(uniq)):
        members = order[offsets[i] : offsets[i + 1]]
        t_idx = members[members < M]
        s_idx = members[members >= M] - M
        coords = tuple(int(c) for c in uniq[i])
        center = origin + (uniq[i].astype(np.float64) + 0.5) * side
        by_coords[coords] = len(boxes)
        boxes.append(
            Box(center=center, side=side, targets=t_idx, sources=s_idx, coords=coords)
        )
    return BoxSet(boxes=boxes, by_coords=by_coords, side=side, origin=origin)


def adaptive_tree(
    targets: np.ndarray,
    sources: np.ndarray,
    leaf_size: int,
    min_side: float,
) -> BoxSet:
    """Adaptive quadtree/octree leaves over both point sets.

    Starting from the joint bounding cube, a cell splits into ``2^K``
    children while it holds more than ``leaf_size`` points *and* its
    side exceeds ``min_side`` (cells at or below ``min_side`` already
    satisfy the expansion's ``rho`` bound, so further splitting buys no
    accuracy).  Empty children are dropped, so clustered clouds produce
    deep refinement only where the points actually are.
    """
    if leaf_size < 1:
        raise InvalidProblemError("leaf_size must be >= 1")
    if min_side <= 0:
        raise InvalidProblemError("min_side must be positive")
    T = np.asarray(targets, dtype=np.float64)
    S = np.asarray(sources, dtype=np.float64)
    K = T.shape[1]
    lo = np.minimum(T.min(axis=0), S.min(axis=0))
    hi = np.maximum(T.max(axis=0), S.max(axis=0))
    root_side = float(max((hi - lo).max(), min_side * 1e-9))
    # nudge the cube open so max-coordinate points bin inside it
    root_side *= 1.0 + 1e-12
    root_center = lo + 0.5 * root_side

    boxes: List[Box] = []

    def refine(center: np.ndarray, side: float, t_idx: np.ndarray, s_idx: np.ndarray) -> None:
        n = len(t_idx) + len(s_idx)
        if n == 0:
            return
        if n <= leaf_size or side <= min_side:
            boxes.append(Box(center=center.copy(), side=side, targets=t_idx, sources=s_idx))
            return
        half = 0.5 * side
        # child octant of each point: one bit per axis (vectorized)
        t_oct = ((T[t_idx] >= center[None, :]) << np.arange(K)[None, :]).sum(axis=1)
        s_oct = ((S[s_idx] >= center[None, :]) << np.arange(K)[None, :]).sum(axis=1)
        for child in range(1 << K):
            ct = t_idx[t_oct == child]
            cs = s_idx[s_oct == child]
            if len(ct) + len(cs) == 0:
                continue
            offset = np.array(
                [(0.25 if (child >> k) & 1 else -0.25) * side for k in range(K)],
                dtype=np.float64,
            )
            refine(center + offset, half, ct, cs)

    refine(
        root_center,
        root_side,
        np.arange(len(T), dtype=np.int64),
        np.arange(len(S), dtype=np.int64),
    )
    return BoxSet(boxes=boxes, side=root_side)
