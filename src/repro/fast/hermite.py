"""Hermite-function machinery and the truncation-error model.

The fast Gauss transform (Greengard & Strain) rewrites the Gaussian
kernel through the generating function of the Hermite *functions*
``h_n(x) = e^{-x^2} H_n(x)``::

    exp(-(u - v)^2) = sum_n  (u^n / n!) * h_n(v)

With ``delta = sqrt(2) * h`` the paper's kernel ``exp(-r^2 / (2 h^2))``
is exactly ``exp(-r^2 / delta^2)``, so every expansion below works in
the scaled coordinates ``(x - c) / delta`` of a box center ``c``.

Truncation error is controlled with Cramér's inequality
``|h_n(x)| <= KAPPA * 2^(n/2) * sqrt(n!)`` (KAPPA ~= 1.09): each 1-D
series factor truncated after ``p`` terms with per-dimension offsets
bounded by ``rho`` leaves a tail of at most

    t(p) = KAPPA * sum_{n >= p}  q^n / sqrt(n!),        q = sqrt(2) * rho

while the full factor is bounded by ``S = KAPPA * sum_{n >= 0} q^n /
sqrt(n!)``.  Truncating a ``d``-dimensional tensor expansion at order
``p`` per dimension therefore loses at most ``S^d - (S - t)^d`` per unit
of source mass.  The series have no convenient closed form, so
:func:`truncation_bound` evaluates them numerically — they converge
factorially, a few dozen terms suffice.

Errors here (and everywhere in :mod:`repro.fast`) are normalized by the
total source mass ``Q = sum_j |w_j|``, the standard FGT convention: the
engine guarantees ``max_i |V_fast[i] - V[i]| <= eps * Q``.

:func:`expansion_tables` memoises the per-``(p, dtype)`` constant tables
(inverse factorials, alternating signs) so repeated fast solves — the
near-field batches of a sweep, a warm serving process — never recompute
them; :func:`hermite_functions` is the shared three-term recurrence
``h_{n+1} = 2 x h_n - 2 n h_{n-1}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import InvalidProblemError

__all__ = [
    "KAPPA",
    "ExpansionTables",
    "expansion_tables",
    "hermite_functions",
    "truncation_bound",
    "choose_order",
    "cutoff_radius",
    "delta_from_bandwidth",
]

#: Cramér's constant: |H_n(x)| e^{-x^2/2} <= KAPPA * 2^{n/2} * sqrt(n!)
KAPPA = 1.09

#: truncation orders beyond this are a configuration error (the series
#: bound stops improving in float64 long before 60 terms)
MAX_ORDER = 60


def delta_from_bandwidth(h: float) -> float:
    """The FGT length scale: ``exp(-r^2/(2h^2)) == exp(-(r/delta)^2)``."""
    if h <= 0:
        raise InvalidProblemError("bandwidth h must be positive")
    return math.sqrt(2.0) * h


@dataclass(frozen=True)
class ExpansionTables:
    """Constant per-order tables shared by every expansion of order ``p``.

    ``inv_factorial[n] = 1/n!`` and ``sign[n] = (-1)^n`` for
    ``n = 0..p-1``, in the requested dtype.  Instances are memoised per
    ``(p, dtype)`` — identity-stable, safe to compare with ``is``.
    """

    p: int
    dtype: str
    inv_factorial: np.ndarray  # (p,)
    sign: np.ndarray  # (p,) alternating +1/-1

    def __post_init__(self) -> None:
        self.inv_factorial.flags.writeable = False
        self.sign.flags.writeable = False


_TABLES: Dict[Tuple[int, str], ExpansionTables] = {}


def expansion_tables(p: int, dtype: str = "float64") -> ExpansionTables:
    """The memoised constant tables for truncation order ``p``."""
    if p < 1 or p > MAX_ORDER:
        raise InvalidProblemError(f"truncation order p={p} out of range [1, {MAX_ORDER}]")
    key = (p, str(dtype))
    hit = _TABLES.get(key)
    if hit is not None:
        return hit
    dt = np.dtype(dtype)
    inv_fact = np.empty(p, dtype=dt)
    f = 1.0
    for n in range(p):
        if n > 0:
            f *= n
        inv_fact[n] = 1.0 / f
    sign = np.where(np.arange(p) % 2 == 0, 1.0, -1.0).astype(dt)
    tables = ExpansionTables(p=p, dtype=str(dtype), inv_factorial=inv_fact, sign=sign)
    _TABLES[key] = tables
    return tables


def hermite_functions(x: np.ndarray, p: int) -> np.ndarray:
    """``h_n(x) = e^{-x^2} H_n(x)`` for ``n = 0..p-1``, shape ``(p, *x.shape)``.

    Three-term recurrence ``h_0 = e^{-x^2}``, ``h_1 = 2 x h_0``,
    ``h_{n+1} = 2 x h_n - 2 n h_{n-1}`` — numerically benign because the
    ``e^{-x^2}`` damping is carried inside every term.
    """
    if p < 1:
        raise InvalidProblemError("need at least one Hermite function")
    x = np.asarray(x, dtype=np.float64)
    out = np.empty((p,) + x.shape, dtype=np.float64)
    out[0] = np.exp(-x * x)
    if p > 1:
        two_x = 2.0 * x
        out[1] = two_x * out[0]
        for n in range(1, p - 1):
            out[n + 1] = two_x * out[n] - (2.0 * n) * out[n - 1]
    return out


def _series_tail(q: float, start: int, terms: int = 200) -> float:
    """``sum_{n >= start} q^n / sqrt(n!)`` to float64 exhaustion."""
    total = 0.0
    log_q = math.log(q) if q > 0 else None
    if log_q is None:
        return 1.0 if start == 0 else 0.0
    for n in range(start, start + terms):
        log_term = n * log_q - 0.5 * math.lgamma(n + 1.0)
        if log_term > 700.0:  # exp() would overflow; the bound is useless anyway
            return math.inf
        total += math.exp(log_term)
        if total and math.exp(log_term) < total * 1e-18 and n > start:
            break
    return total


def truncation_bound(p: int, rho: float, d: int, translation: bool = False) -> float:
    """Error per unit source mass of an order-``p`` tensor truncation.

    ``rho`` bounds the per-dimension scaled offset of a point from its
    box center (``|x_k - c_k| / delta <= rho``); ``d`` is the dimension.
    ``translation=True`` models the Hermite-to-local translation, whose
    composed bound replaces ``q = sqrt(2) rho`` by ``2 rho`` (the extra
    ``2^{n/2}`` from bounding ``sqrt((alpha+beta)!)`` by
    ``sqrt(alpha!) sqrt(beta!) 2^{(|alpha|+|beta|)/2}``) and is further
    doubled as a safety factor for the two stacked truncations.
    """
    if rho <= 0 or d < 1:
        raise InvalidProblemError("need rho > 0 and d >= 1")
    q = (2.0 if translation else math.sqrt(2.0)) * rho
    tail = KAPPA * _series_tail(q, p)
    full = KAPPA * _series_tail(q, 0)
    kept = max(full - tail, 0.0)
    try:
        bound = full**d - kept**d
    except OverflowError:
        return math.inf
    return 2.0 * bound if translation else bound


def choose_order(eps: float, rho: float, d: int, translation: bool = False) -> int:
    """Smallest ``p`` whose truncation bound meets ``eps`` (per unit mass).

    Raises :class:`InvalidProblemError` when no order up to
    :data:`MAX_ORDER` reaches ``eps`` — the caller should fall back to
    the dense path rather than silently miss the accuracy contract.
    """
    if eps <= 0:
        raise InvalidProblemError("eps must be positive")
    for p in range(1, MAX_ORDER + 1):
        if truncation_bound(p, rho, d, translation=translation) <= eps:
            return p
    raise InvalidProblemError(
        f"no truncation order up to {MAX_ORDER} meets eps={eps:g} "
        f"at rho={rho:g}, d={d} (translation={translation}); "
        "use the dense path for this accuracy"
    )


def cutoff_radius(eps_tail: float, delta: float) -> float:
    """Distance beyond which a unit-mass source contributes under ``eps_tail``.

    ``exp(-(r/delta)^2) <= eps_tail  <=>  r >= delta * sqrt(ln(1/eps_tail))``;
    pruned interactions therefore cost at most ``Q * eps_tail`` in total.
    """
    if not (0.0 < eps_tail < 1.0):
        raise InvalidProblemError("eps_tail must be in (0, 1)")
    if delta <= 0:
        raise InvalidProblemError("delta must be positive")
    return delta * math.sqrt(math.log(1.0 / eps_tail))
