"""Hierarchical fast summation: FGT and treecode with an eps contract.

Turns the paper's dense O(M*N) Gaussian summation into O(M+N) for large
point clouds: sources and targets are clustered into boxes
(:mod:`repro.fast.boxes`), far-field box pairs are evaluated through
truncated Hermite/Taylor expansions whose order is chosen from a
user-supplied ``eps`` by an analytic error bound
(:mod:`repro.fast.hermite`), and the near field stays on the paper's
fused kernel as a batch of small dense problems
(:mod:`repro.fast.engine`).  The front door for callers is
:func:`repro.core.api.fast_kernel_summation`.
"""

from .accuracy import max_rel_error, sampled_max_rel_error
from .boxes import Box, BoxSet, adaptive_tree, uniform_boxes
from .engine import FastReport, decide_method, run_fast
from .hermite import (
    KAPPA,
    ExpansionTables,
    choose_order,
    cutoff_radius,
    delta_from_bandwidth,
    expansion_tables,
    hermite_functions,
    truncation_bound,
)
from .plan import (
    AUTO_MIN_INTERACTIONS,
    FastPlan,
    build_plan,
    modelled_work_fraction,
)

__all__ = [
    "KAPPA",
    "AUTO_MIN_INTERACTIONS",
    "Box",
    "BoxSet",
    "ExpansionTables",
    "FastPlan",
    "FastReport",
    "adaptive_tree",
    "build_plan",
    "choose_order",
    "cutoff_radius",
    "decide_method",
    "delta_from_bandwidth",
    "expansion_tables",
    "hermite_functions",
    "max_rel_error",
    "modelled_work_fraction",
    "run_fast",
    "sampled_max_rel_error",
    "truncation_bound",
    "uniform_boxes",
]
