"""Kernel launch descriptors.

A :class:`KernelLaunch` bundles everything the timing, profiling, and energy
layers need to know about one kernel invocation: the launch configuration
(grid/block/registers/shared memory — the inputs to the occupancy
calculator) and the :class:`KernelCounters` the analytical model derived for
it (instruction mix, memory-hierarchy transactions, DRAM traffic).

Launch descriptors are produced by :mod:`repro.perf.counts` for each of the
paper's kernels and consumed by :mod:`repro.perf.timing` and
:mod:`repro.energy.model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dram import DramTraffic
from .isa import InstructionMix

__all__ = ["KernelCounters", "KernelLaunch"]


@dataclass
class KernelCounters:
    """Grid-total event counts for one kernel launch.

    Transaction units follow nvprof: shared-memory transactions are
    warp-level bank passes (replays included), L2 transactions are 32-byte
    sectors between the SMs and L2, DRAM traffic is bytes between L2 and
    memory.
    """

    mix: InstructionMix = field(default_factory=InstructionMix)
    l2_read_transactions: float = 0.0
    l2_write_transactions: float = 0.0
    dram: DramTraffic = field(default_factory=lambda: DramTraffic(0.0, 0.0))
    smem_load_transactions: float = 0.0
    smem_store_transactions: float = 0.0
    barriers: float = 0.0
    atomics: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "l2_read_transactions",
            "l2_write_transactions",
            "smem_load_transactions",
            "smem_store_transactions",
            "barriers",
            "atomics",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def l2_transactions(self) -> float:
        return self.l2_read_transactions + self.l2_write_transactions

    @property
    def smem_transactions(self) -> float:
        return self.smem_load_transactions + self.smem_store_transactions

    @property
    def flops(self) -> float:
        return self.mix.flops()

    @property
    def thread_instructions(self) -> float:
        return self.mix.thread_instructions()

    def merged_with(self, other: "KernelCounters") -> "KernelCounters":
        """Element-wise sum (used when aggregating a pipeline)."""
        mix = InstructionMix()
        mix.merge(self.mix)
        mix.merge(other.mix)
        return KernelCounters(
            mix=mix,
            l2_read_transactions=self.l2_read_transactions + other.l2_read_transactions,
            l2_write_transactions=self.l2_write_transactions + other.l2_write_transactions,
            dram=self.dram + other.dram,
            smem_load_transactions=self.smem_load_transactions + other.smem_load_transactions,
            smem_store_transactions=self.smem_store_transactions + other.smem_store_transactions,
            barriers=self.barriers + other.barriers,
            atomics=self.atomics + other.atomics,
        )


@dataclass
class KernelLaunch:
    """One kernel invocation: configuration + derived counters."""

    name: str
    grid_blocks: int
    threads_per_block: int
    regs_per_thread: int
    smem_per_block: int
    counters: KernelCounters
    #: fraction of DRAM traffic that is long sequential streams (vs scattered)
    streaming_fraction: float = 1.0
    #: issue efficiency: fraction of scheduler slots doing useful work.
    #: Assembly-tuned kernels (cuBLAS, maxas) sit near 0.9; CUDA-C kernels
    #: lose slots to register-bank conflicts and unhidden dependencies.
    issue_efficiency: float = 1.0
    #: cycles per CTA that cannot overlap with other work (tile-load
    #: prologue, atomic epilogue); charged per execution wave in timing.
    per_cta_overhead_cycles: float = 0.0
    #: the floating-point work is double precision (DFMA on the scarce DP
    #: units instead of FFMA on the CUDA cores)
    fp64: bool = False

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError("grid must contain at least one block")
        if not 0.0 < self.issue_efficiency <= 1.0:
            raise ValueError("issue_efficiency must lie in (0, 1]")
        if not 0.0 <= self.streaming_fraction <= 1.0:
            raise ValueError("streaming_fraction must lie in [0, 1]")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block
