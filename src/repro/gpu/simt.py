"""A miniature SIMT interpreter for one thread block.

The paper's correctness-critical claims about its shared-memory layout
(Fig. 5: both the stores that stage a tile into shared memory and the loads
that feed the rank-1 updates are bank-conflict-free) are statements about
*which addresses the 32 lanes of a warp touch in the same cycle*.  Rather
than assert those properties on paper, this interpreter executes a block of
cooperating threads written as Python generators, groups their accesses by
warp, and routes them through :class:`~repro.gpu.sharedmem.SharedMemory`,
which counts real transactions.

Threads yield *operation tokens*; the scheduler advances all lanes of a warp
in lockstep and enforces ``__syncthreads`` semantics across warps:

``ctx.barrier()``
    block-wide barrier (yields until every live thread arrives);
``ctx.lds(addr, width)`` / ``ctx.sts(addr, values, width)``
    shared-memory access, charged at warp granularity;
``ctx.atomic_add(buffer, index, value)``
    sequentially-consistent atomic on a global numpy buffer;
``ctx.idle()``
    explicit no-op for divergence padding.

The model intentionally requires the lanes of a warp to issue the same kind
of operation at each step — true for every kernel in this repository — and
raises :class:`LockstepError` otherwise, which doubles as a divergence
detector in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence

import numpy as np

from ..obs.metrics import active_metrics
from ..obs.tracer import span
from .atomics import atomic_add_word
from .sharedmem import SharedMemory

__all__ = ["LockstepError", "DeadlockError", "ThreadCtx", "Block", "BlockRunStats"]


class LockstepError(RuntimeError):
    """Lanes of one warp issued different operations in the same step.

    Carries the divergence site in structured attributes so the static
    analyzers and tests can assert on *where* lockstep broke, not just
    parse the message: ``warp_id`` (which warp diverged), ``step`` (the
    scheduler micro-step index at the time), and ``token_kinds`` (the
    conflicting operation-token kinds the lanes presented, sorted).
    Attributes are ``None`` when a site does not apply.
    """

    def __init__(
        self,
        message: str,
        *,
        warp_id: Optional[int] = None,
        step: Optional[int] = None,
        token_kinds: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(message)
        self.warp_id = warp_id
        self.step = step
        self.token_kinds = tuple(token_kinds) if token_kinds is not None else None


class DeadlockError(RuntimeError):
    """A barrier can never be satisfied (some threads exited early)."""


# Operation tokens threads yield.  Plain tuples keep generator plumbing cheap.
_BARRIER = "bar"
_LDS = "lds"
_STS = "sts"
_ATOM = "atom"
_IDLE = "idle"
_SHFL = "shfl"


class ThreadCtx:
    """Per-thread view handed to the kernel body.

    Exposes the CUDA-ish identifiers (``tx``, ``ty``, ``tid``, ``lane``,
    ``warp_id``) plus constructors for the operation tokens.  The kernel
    body must ``yield`` every token it builds; shared-memory loads deliver
    their data as the value of the ``yield`` expression.
    """

    def __init__(self, tid: int, block_dim: tuple[int, int], warp_size: int) -> None:
        self.tid = tid
        self.block_dim = block_dim
        self.tx = tid % block_dim[0]
        self.ty = tid // block_dim[0]
        self.lane = tid % warp_size
        self.warp_id = tid // warp_size

    # -- token constructors (the body does `val = yield ctx.lds(...)`) ----
    @staticmethod
    def barrier():
        return (_BARRIER,)

    @staticmethod
    def lds(addr: int, width: int = 1):
        return (_LDS, int(addr), int(width))

    @staticmethod
    def sts(addr: int, values, width: int = 1):
        return (_STS, int(addr), np.asarray(values, dtype=np.float32).ravel(), int(width))

    @staticmethod
    def atomic_add(buffer: np.ndarray, index: int, value: float):
        return (_ATOM, buffer, int(index), float(value))

    @staticmethod
    def shfl(value: float, src_lane: int):
        """Warp shuffle: read ``value`` as presented by ``src_lane``.

        All lanes of the warp must issue the shuffle in the same step
        ("all threads within a warp are scheduled together"); the yielded
        result is the value contributed by the source lane.  Reading from
        an inactive lane returns the reader's own value, like the hardware.
        """
        return (_SHFL, float(value), int(src_lane))

    @staticmethod
    def idle():
        return (_IDLE,)


@dataclass
class BlockRunStats:
    """Summary of one block execution."""

    steps: int
    barriers: int
    atomic_ops: int
    smem: SharedMemory

    @property
    def load_conflicts(self) -> int:
        return self.smem.stats.load_conflicts

    @property
    def store_conflicts(self) -> int:
        return self.smem.stats.store_conflicts


class Block:
    """Executes one cooperative thread block to completion."""

    def __init__(
        self,
        block_dim: tuple[int, int],
        smem_words: int,
        warp_size: int = 32,
        max_steps: int = 10_000_000,
    ) -> None:
        bx, by = block_dim
        if bx <= 0 or by <= 0:
            raise ValueError("block dimensions must be positive")
        self.block_dim = (bx, by)
        self.num_threads = bx * by
        self.warp_size = warp_size
        self.num_warps = (self.num_threads + warp_size - 1) // warp_size
        self.smem = SharedMemory(smem_words)
        self.max_steps = max_steps

    def run(
        self,
        kernel: Callable[..., Generator],
        *args,
        **kwargs,
    ) -> BlockRunStats:
        """Run ``kernel(ctx, *args, **kwargs)`` on every thread of the block."""
        with span(
            "simt.block",
            kernel=getattr(kernel, "__name__", str(kernel)),
            threads=self.num_threads,
            warps=self.num_warps,
        ):
            stats = self._run(kernel, *args, **kwargs)
        m = active_metrics()
        if m is not None:
            m.counter("gpu.simt.steps").inc(stats.steps)
            m.counter("gpu.simt.barriers").inc(stats.barriers)
            m.counter("gpu.simt.atomic_ops").inc(stats.atomic_ops)
        return stats

    def _run(
        self,
        kernel: Callable[..., Generator],
        *args,
        **kwargs,
    ) -> BlockRunStats:
        ctxs = [ThreadCtx(t, self.block_dim, self.warp_size) for t in range(self.num_threads)]
        gens: list[Optional[Generator]] = [kernel(c, *args, **kwargs) for c in ctxs]
        # value to send into each generator at its next step (None initially)
        inbox: list = [None] * self.num_threads
        # token each live thread is currently presenting (None = needs a step)
        pending: list = [None] * self.num_threads
        at_barrier = [False] * self.num_threads
        barriers = 0
        atomics = 0
        steps = 0

        # Preallocated per-lane staging buffers, reused across every
        # micro-step: advance() scatters each LDS/STS token's operands here,
        # so warp execution gathers addresses, widths and store data with one
        # fancy index instead of rebuilding per-lane Python lists each step.
        addr_buf = np.zeros(self.num_threads, dtype=np.int64)
        width_buf = np.ones(self.num_threads, dtype=np.int64)
        vals_buf = np.zeros((self.num_threads, 4), dtype=np.float32)  # max width

        def advance(t: int) -> None:
            """Step thread ``t`` until it presents a token or finishes."""
            g = gens[t]
            if g is None:
                return
            try:
                tok = g.send(inbox[t])
                pending[t] = tok
                inbox[t] = None
            except StopIteration:
                gens[t] = None
                pending[t] = None
                return
            kind = tok[0]
            if kind == _LDS:
                addr_buf[t] = tok[1]
                width_buf[t] = tok[2]
            elif kind == _STS:
                w = tok[3]
                if tok[2].size != w:
                    raise ValueError(
                        f"tid{t}: sts provided {tok[2].size} value(s) "
                        f"for a width-{w} store"
                    )
                addr_buf[t] = tok[1]
                width_buf[t] = w
                vals_buf[t, :w] = tok[2]

        for t in range(self.num_threads):
            advance(t)

        while any(g is not None for g in gens):
            steps += 1
            if steps > self.max_steps:
                raise DeadlockError("exceeded max_steps; kernel livelocked?")
            progressed = False
            for w in range(self.num_warps):
                lo = w * self.warp_size
                hi = min(lo + self.warp_size, self.num_threads)
                lanes = [t for t in range(lo, hi) if gens[t] is not None]
                if not lanes:
                    continue
                if all(at_barrier[t] for t in lanes):
                    continue  # whole warp parked at the barrier
                active = [t for t in lanes if not at_barrier[t]]
                # Lanes that reached the barrier park individually — their
                # divergent siblings may still have work before arriving.
                arrived = [t for t in active if pending[t][0] == _BARRIER]
                for t in arrived:
                    at_barrier[t] = True
                if arrived:
                    progressed = True
                active = [t for t in active if not at_barrier[t]]
                if not active:
                    continue
                # Execute one micro-step for this warp: all remaining lanes
                # must present the same token kind (idle lanes ride along).
                kindset = {pending[t][0] for t in active}
                if len(kindset - {_IDLE}) > 1:
                    raise LockstepError(
                        f"warp {w} diverged: lanes issued {sorted(kindset)} in one step",
                        warp_id=w,
                        step=steps,
                        token_kinds=sorted(kindset),
                    )
                kind = next(iter(kindset - {_IDLE}), _IDLE)
                if kind == _LDS:
                    doers = [t for t in active if pending[t][0] == _LDS]
                    d = np.asarray(doers, dtype=np.intp)
                    width = int(width_buf[d[0]])
                    if np.any(width_buf[d] != width):
                        raise LockstepError(
                            "mixed access widths within one warp step",
                            warp_id=w,
                            step=steps,
                            token_kinds=[_LDS],
                        )
                    vals = self.smem.warp_load(addr_buf[d], width)
                    for i, t in enumerate(doers):
                        inbox[t] = vals[i, 0] if width == 1 else vals[i].copy()
                        advance(t)
                    for t in active:
                        if t not in doers:
                            advance(t)
                    progressed = True
                elif kind == _STS:
                    doers = [t for t in active if pending[t][0] == _STS]
                    d = np.asarray(doers, dtype=np.intp)
                    width = int(width_buf[d[0]])
                    if np.any(width_buf[d] != width):
                        raise LockstepError(
                            "mixed access widths within one warp step",
                            warp_id=w,
                            step=steps,
                            token_kinds=[_STS],
                        )
                    self.smem.warp_store(addr_buf[d], vals_buf[d, :width], width)
                    for t in active:
                        advance(t)
                    progressed = True
                elif kind == _SHFL:
                    doers = [t for t in active if pending[t][0] == _SHFL]
                    contributed = {t % self.warp_size: pending[t][1] for t in doers}
                    for t in doers:
                        src = pending[t][2] % self.warp_size
                        inbox[t] = contributed.get(src, pending[t][1])
                    for t in active:
                        advance(t)
                    progressed = True
                elif kind == _ATOM:
                    # Atomics serialize; executing lane order is the ordering.
                    for t in active:
                        if pending[t][0] == _ATOM:
                            _, buf, idx, val = pending[t]
                            atomic_add_word(buf, idx, val, where=f"tid{t}")
                            atomics += 1
                        advance(t)
                    progressed = True
                else:  # pure idle step
                    for t in active:
                        advance(t)
                    progressed = True

            # Barrier release: every live thread parked.  Strict (pre-Volta)
            # semantics: a thread that exited without arriving can never
            # satisfy the barrier — the classic missing-__syncthreads bug.
            live = [t for t in range(self.num_threads) if gens[t] is not None]
            if live and all(at_barrier[t] for t in live):
                if len(live) < self.num_threads:
                    raise DeadlockError(
                        f"{self.num_threads - len(live)} thread(s) exited without "
                        "reaching the barrier the rest of the block waits at"
                    )
                barriers += 1
                for t in live:
                    at_barrier[t] = False
                    advance(t)
                progressed = True
            if not progressed:
                waiting = sum(1 for t in live if at_barrier[t])
                raise DeadlockError(
                    f"no progress: {waiting}/{len(live)} live threads at barrier, "
                    "remainder exited — missing __syncthreads on some path?"
                )

        if any(at_barrier[t] for t in range(self.num_threads)):
            raise DeadlockError("threads left waiting at a barrier after block exit")
        return BlockRunStats(steps=steps, barriers=barriers, atomic_ops=atomics, smem=self.smem)
