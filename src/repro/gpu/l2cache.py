"""Trace-driven set-associative L2 cache simulator.

The paper's Fig. 2 (L2 MPKI) and Fig. 8a (L2 transactions) hinge on how the
unfused pipeline streams the M x N intermediate matrix through a 1.75 MB L2
that cannot possibly hold it, while the fused kernel's working set (one
128 x K panel pair per CTA plus the K x N matrix B) largely fits.  This
module provides an LRU, write-back, write-allocate cache that can be driven
with the exact sector streams produced by :mod:`repro.gpu.coalescing`, used
both in unit tests and to validate the analytical traffic model at small
problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..obs.metrics import active_metrics

__all__ = ["CacheStats", "L2Cache"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one simulation run."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            read_hits=self.read_hits + other.read_hits,
            read_misses=self.read_misses + other.read_misses,
            write_hits=self.write_hits + other.write_hits,
            write_misses=self.write_misses + other.write_misses,
            writebacks=self.writebacks + other.writebacks,
        )

    def __iadd__(self, other: "CacheStats") -> "CacheStats":
        self.read_hits += other.read_hits
        self.read_misses += other.read_misses
        self.write_hits += other.write_hits
        self.write_misses += other.write_misses
        self.writebacks += other.writebacks
        return self

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def dram_reads(self) -> int:
        """Line fills caused by misses (write-allocate)."""
        return self.misses

    @property
    def dram_writes(self) -> int:
        return self.writebacks

    def mpki(self, instructions: float) -> float:
        """Misses per kilo-instruction, given a thread-level instruction count."""
        if instructions <= 0:
            raise ValueError("instruction count must be positive")
        return 1000.0 * self.misses / instructions


class L2Cache:
    """LRU set-associative write-back cache over byte addresses.

    The tag store is a dict per set kept in LRU order (hits re-insert their
    entry, so the first key is always the least recently used line and
    eviction is O(1) instead of an O(ways) timestamp scan); entries also
    carry a last-use timestamp, which stays bit-exact between the scalar
    and vectorized access paths.  Addresses are tracked at line
    granularity; sub-line (sector) accesses to a resident line are hits,
    matching Maxwell's behaviour of filling whole 128-byte lines from DRAM
    on miss.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 128, ways: int = 16) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be divisible by line_bytes * ways")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # per-set: {tag: (last_use, dirty)}
        self._sets: list[dict[int, list]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def _locate(self, byte_address: int) -> tuple[int, int]:
        line = byte_address // self.line_bytes
        return int(line % self.num_sets), int(line // self.num_sets)

    def _touch(self, set_idx: int, tag: int, write: bool) -> bool:
        """Access one line; returns True on hit.  Handles fill + eviction."""
        self._clock += 1
        s = self._sets[set_idx]
        entry = s.pop(tag, None)
        if entry is not None:
            entry[0] = self._clock
            entry[1] = entry[1] or write
            s[tag] = entry  # re-insert: dict order stays oldest-first
            return True
        if len(s) >= self.ways:
            victim, ventry = next(iter(s.items()))
            if ventry[1]:
                self.stats.writebacks += 1
            del s[victim]
        s[tag] = [self._clock, write]
        return False

    def access(self, byte_address: int, write: bool = False) -> bool:
        """Simulate one sector access; returns True on hit."""
        if byte_address < 0:
            raise ValueError("negative address")
        set_idx, tag = self._locate(byte_address)
        hit = self._touch(set_idx, tag, write)
        if write:
            if hit:
                self.stats.write_hits += 1
            else:
                self.stats.write_misses += 1
        else:
            if hit:
                self.stats.read_hits += 1
            else:
                self.stats.read_misses += 1
        m = active_metrics()
        if m is not None:
            m.counter("gpu.l2.hits" if hit else "gpu.l2.misses").inc()
        return hit

    def access_many(
        self, byte_addresses: Iterable[int] | np.ndarray, write: bool = False
    ) -> CacheStats:
        """Drive the cache with a stream of sector addresses.

        Vectorized equivalent of calling :meth:`access` per address:
        addresses are shifted/masked to ``(set, tag)`` arrays up front and
        consecutive same-line accesses are run-length deduplicated, so a
        run of ``L`` sectors on one line costs one tag-store operation
        (the trailing ``L - 1`` accesses are hits by construction; the
        clock and the line's LRU timestamp advance exactly as the scalar
        loop would have advanced them).  Final cache state, ``self.stats``
        totals, and the ``repro.obs`` counter totals are identical to the
        scalar path.

        Returns the :class:`CacheStats` delta of this call (also
        accumulated into ``self.stats``).
        """
        addrs = np.asarray(byte_addresses, dtype=np.int64).ravel()
        delta = CacheStats()
        if addrs.size == 0:
            return delta
        if addrs.min() < 0:
            raise ValueError("negative address")
        lines = addrs // self.line_bytes
        set_idx = lines % self.num_sets
        tags = lines // self.num_sets

        # run-length dedup of consecutive same-line accesses; a run of L
        # sectors costs one tag-store operation, and the line's final LRU
        # timestamp is the clock value at the run's *last* access
        starts = np.empty(lines.size, dtype=bool)
        starts[0] = True
        np.not_equal(lines[1:], lines[:-1], out=starts[1:])
        run_at = np.flatnonzero(starts)
        if run_at.size == lines.size:
            # no dedup in this stream: every access is its own run, so the
            # clock advances by exactly one per run and a lazy range avoids
            # materializing a third Python list
            run_sets = set_idx.tolist()
            run_tags = tags.tolist()
            run_clocks = range(self._clock + 1, self._clock + lines.size + 1)
        else:
            run_end = np.empty(run_at.size, dtype=np.int64)
            run_end[:-1] = run_at[1:]
            run_end[-1] = lines.size
            run_sets = set_idx[run_at].tolist()
            run_tags = tags[run_at].tolist()
            run_clocks = (self._clock + run_end).tolist()

        sets = self._sets
        ways = self.ways
        misses = 0
        writebacks = 0
        if write:
            for si, tag, clk in zip(run_sets, run_tags, run_clocks):
                s = sets[si]
                entry = s.pop(tag, None)
                if entry is not None:
                    entry[0] = clk
                    entry[1] = True
                    s[tag] = entry
                else:
                    if len(s) >= ways:
                        victim, ventry = next(iter(s.items()))
                        if ventry[1]:
                            writebacks += 1
                        del s[victim]
                    s[tag] = [clk, True]
                    misses += 1
        else:
            for si, tag, clk in zip(run_sets, run_tags, run_clocks):
                s = sets[si]
                entry = s.pop(tag, None)
                if entry is not None:
                    entry[0] = clk
                    s[tag] = entry
                else:
                    if len(s) >= ways:
                        victim, ventry = next(iter(s.items()))
                        if ventry[1]:
                            writebacks += 1
                        del s[victim]
                    s[tag] = [clk, False]
                    misses += 1
        self._clock += int(addrs.size)
        hits = int(addrs.size) - misses

        if write:
            delta.write_hits, delta.write_misses = hits, misses
        else:
            delta.read_hits, delta.read_misses = hits, misses
        delta.writebacks = writebacks
        self.stats += delta
        m = active_metrics()
        if m is not None:
            if hits:
                m.counter("gpu.l2.hits").inc(hits)
            if misses:
                m.counter("gpu.l2.misses").inc(misses)
        return delta

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache; returns writebacks."""
        wb = 0
        for s in self._sets:
            wb += sum(1 for e in s.values() if e[1])
            s.clear()
        self.stats.writebacks += wb
        m = active_metrics()
        if m is not None:
            m.counter("gpu.l2.writebacks").inc(wb)
        return wb

    def reset_stats(self) -> None:
        self.stats = CacheStats()
