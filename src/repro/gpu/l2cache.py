"""Trace-driven set-associative L2 cache simulator.

The paper's Fig. 2 (L2 MPKI) and Fig. 8a (L2 transactions) hinge on how the
unfused pipeline streams the M x N intermediate matrix through a 1.75 MB L2
that cannot possibly hold it, while the fused kernel's working set (one
128 x K panel pair per CTA plus the K x N matrix B) largely fits.  This
module provides an LRU, write-back, write-allocate cache that can be driven
with the exact sector streams produced by :mod:`repro.gpu.coalescing`, used
both in unit tests and to validate the analytical traffic model at small
problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..obs.metrics import active_metrics

__all__ = ["CacheStats", "L2Cache"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one simulation run."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def dram_reads(self) -> int:
        """Line fills caused by misses (write-allocate)."""
        return self.misses

    @property
    def dram_writes(self) -> int:
        return self.writebacks

    def mpki(self, instructions: float) -> float:
        """Misses per kilo-instruction, given a thread-level instruction count."""
        if instructions <= 0:
            raise ValueError("instruction count must be positive")
        return 1000.0 * self.misses / instructions


class L2Cache:
    """LRU set-associative write-back cache over byte addresses.

    Timestamps implement true LRU; the tag store is a dict per set, which is
    plenty fast for the trace sizes used in validation (millions of
    accesses).  Addresses are tracked at line granularity; sub-line (sector)
    accesses to a resident line are hits, matching Maxwell's behaviour of
    filling whole 128-byte lines from DRAM on miss.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 128, ways: int = 16) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be divisible by line_bytes * ways")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # per-set: {tag: (last_use, dirty)}
        self._sets: list[dict[int, list]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def _locate(self, byte_address: int) -> tuple[int, int]:
        line = byte_address // self.line_bytes
        return int(line % self.num_sets), int(line // self.num_sets)

    def _touch(self, set_idx: int, tag: int, write: bool) -> bool:
        """Access one line; returns True on hit.  Handles fill + eviction."""
        self._clock += 1
        s = self._sets[set_idx]
        entry = s.get(tag)
        if entry is not None:
            entry[0] = self._clock
            entry[1] = entry[1] or write
            return True
        if len(s) >= self.ways:
            victim = min(s, key=lambda t: s[t][0])
            if s[victim][1]:
                self.stats.writebacks += 1
            del s[victim]
        s[tag] = [self._clock, write]
        return False

    def access(self, byte_address: int, write: bool = False) -> bool:
        """Simulate one sector access; returns True on hit."""
        if byte_address < 0:
            raise ValueError("negative address")
        set_idx, tag = self._locate(byte_address)
        hit = self._touch(set_idx, tag, write)
        if write:
            if hit:
                self.stats.write_hits += 1
            else:
                self.stats.write_misses += 1
        else:
            if hit:
                self.stats.read_hits += 1
            else:
                self.stats.read_misses += 1
        m = active_metrics()
        if m is not None:
            m.counter("gpu.l2.hits" if hit else "gpu.l2.misses").inc()
        return hit

    def access_many(self, byte_addresses: Iterable[int] | np.ndarray, write: bool = False) -> None:
        """Drive the cache with a stream of sector addresses."""
        for a in np.asarray(byte_addresses, dtype=np.int64).ravel():
            self.access(int(a), write)

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache; returns writebacks."""
        wb = 0
        for s in self._sets:
            wb += sum(1 for e in s.values() if e[1])
            s.clear()
        self.stats.writebacks += wb
        m = active_metrics()
        if m is not None:
            m.counter("gpu.l2.writebacks").inc(wb)
        return wb

    def reset_stats(self) -> None:
        self.stats = CacheStats()
