"""Per-SM read-only (texture) cache model.

Section II-C: "the unified L1 and texture unit of the Maxwell architecture
does not actually cache global loads, except for gather instructions,
texture fetches, and surface writes".  cuBLAS stages its tiles through the
texture path, which is why the calibration grants it full sector
utilization while CUDA-C's generic loads go straight to L2.  This module
models that path: a small per-SM read-only cache (24 KiB, 32-byte lines on
Maxwell) that filters an SM's load stream before it reaches the L2.

:func:`filtered_l2_transactions` quantifies the asymmetry directly: the
same tile-load stream costs fewer L2 sectors through the texture path than
through generic loads, because the 16-byte LDG.128 granules of one warp
hit the 32-byte lines their neighbours just fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["ReadOnlyCache", "ReadOnlyCacheStats", "filtered_l2_transactions"]


@dataclass
class ReadOnlyCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class ReadOnlyCache:
    """Small LRU read-only cache (no writes, no coherence, per SM)."""

    def __init__(self, size_bytes: int = 24 * 1024, line_bytes: int = 32, ways: int = 8):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be divisible by line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = ReadOnlyCacheStats()

    def load(self, byte_address: int) -> bool:
        """Read one address; returns True on hit.  Misses fill one line."""
        if byte_address < 0:
            raise ValueError("negative address")
        line = byte_address // self.line_bytes
        s = self._sets[line % self.num_sets]
        tag = line // self.num_sets
        self._clock += 1
        if tag in s:
            s[tag] = self._clock
            self.stats.hits += 1
            return True
        if len(s) >= self.ways:
            del s[min(s, key=s.get)]  # LRU
        s[tag] = self._clock
        self.stats.misses += 1
        return False

    def load_many(self, addresses: Iterable[int]) -> None:
        for a in addresses:
            self.load(int(a))

    def invalidate(self) -> None:
        """Kernel-boundary invalidation (the texture cache is not coherent)."""
        for s in self._sets:
            s.clear()


def filtered_l2_transactions(
    byte_addresses: Iterable[int],
    cache: ReadOnlyCache | None = None,
) -> int:
    """L2 sector transactions after read-only-cache filtering.

    Feed the per-granule (e.g. 16-byte LDG.128) addresses of a load stream;
    only cache misses reach the L2, each as one line-sized transaction.
    """
    c = cache if cache is not None else ReadOnlyCache()
    before = c.stats.misses
    c.load_many(byte_addresses)
    return c.stats.misses - before
