"""Cycle-level warp-scheduling simulator for one SM.

The calibration constants of :mod:`repro.perf.calibration` summarize how
well a kernel keeps the SM's issue slots busy.  This simulator computes
that from first principles for a small *warp program*: a loop body
described as a sequence of warp instructions with explicit register
dependencies, executed by ``W`` resident warps under a greedy-then-oldest
scheduler with scoreboarded latencies and per-unit throughput limits.

It is intentionally small — a few execution units, static latencies — but
it captures the three effects the issue-efficiency constants stand for:

* **dependency stalls**: an instruction cannot issue until its producers'
  latencies have elapsed (assembly schedulers hide these by interleaving
  independent FFMAs; compiler-scheduled CUDA-C hides fewer);
* **unit contention**: only so many warp instructions per cycle can go to
  the FP32 pipes, the shared-memory pipe, or the LSU;
* **occupancy**: more resident warps fill more stall cycles — until the
  units saturate.

`tests/gpu/test_warpsim.py` uses it to check the calibrated efficiencies
(0.88 assembly-grade vs 0.70 CUDA-C) fall out of plausible dependency
distances rather than being free parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .device import DeviceSpec, GTX970

__all__ = ["WarpInstr", "WarpProgram", "SmSimResult", "simulate_sm", "gemm_inner_loop"]

#: static result latencies per unit class (SM cycles, Maxwell-like)
LATENCY = {
    "fp32": 6,
    "sfu": 12,
    "smem": 24,
    "lsu": 400,
    "int": 6,
    "control": 1,
}

#: warp-instructions each unit can accept per cycle (per SM)
THROUGHPUT = {
    "fp32": 4.0,
    "sfu": 1.0,
    "smem": 1.0,
    "lsu": 1.0,
    "int": 4.0,  # shares the core pipes; combined with fp32 below
    "control": 4.0,
}


@dataclass(frozen=True)
class WarpInstr:
    """One warp-level instruction in a program.

    ``deps`` lists *instruction indices within the program* whose results
    this instruction consumes; loop iterations repeat the same pattern, so
    a dependency on a later index refers to the previous iteration.
    """

    unit: str
    deps: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.unit not in LATENCY:
            raise ValueError(f"unknown unit {self.unit!r}; known: {sorted(LATENCY)}")


@dataclass(frozen=True)
class WarpProgram:
    """A loop body executed ``iterations`` times by every warp."""

    body: Tuple[WarpInstr, ...]
    iterations: int = 16

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("program body is empty")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        n = len(self.body)
        for ins in self.body:
            for d in ins.deps:
                if not 0 <= d < n:
                    raise ValueError(f"dependency index {d} outside the body")


@dataclass
class SmSimResult:
    """Outcome of simulating one SM."""

    cycles: int
    instructions: int
    issue_slots: int
    per_unit_issued: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def efficiency(self, device: DeviceSpec = GTX970) -> float:
        """Achieved issue rate over the scheduler's peak issue rate,
        normalized to the busiest unit's theoretical minimum time.

        1.0 means the program ran exactly at its unit-throughput bound —
        the definition behind `Calibration.issue_efficiency_*`.
        """
        bound = 0.0
        fp32_like = (
            self.per_unit_issued.get("fp32", 0) + self.per_unit_issued.get("int", 0)
        )
        bound = max(bound, fp32_like / THROUGHPUT["fp32"])
        for unit in ("sfu", "smem", "lsu"):
            bound = max(bound, self.per_unit_issued.get(unit, 0) / THROUGHPUT[unit])
        if bound == 0:
            raise ValueError("program issued no throughput-limited instructions")
        return bound / self.cycles


def simulate_sm(
    program: WarpProgram,
    num_warps: int = 16,
    device: DeviceSpec = GTX970,
    max_cycles: int = 5_000_000,
    fp32_replay_rate: float = 0.0,
) -> SmSimResult:
    """Simulate ``num_warps`` copies of ``program`` on one SM.

    Greedy-then-oldest scheduling: each cycle, up to
    ``device.num_warp_schedulers`` distinct ready warps issue one
    instruction each, subject to per-unit acceptance limits; readiness is
    determined by a per-warp scoreboard of outstanding result latencies.

    ``fp32_replay_rate`` models register-file bank conflicts, the effect
    the paper names as uncontrollable from CUDA-C ("it is infeasible to
    avoid register file bank conflict when coding in the CUDA-C
    programming language"): that fraction of FP32 issues deterministically
    consumes a second core slot.
    """
    if num_warps <= 0:
        raise ValueError("need at least one warp")
    if not 0.0 <= fp32_replay_rate < 1.0:
        raise ValueError("fp32_replay_rate must lie in [0, 1)")
    n = len(program.body)
    per_warp_insts = n * program.iterations
    total_insts = per_warp_insts * num_warps

    pc = [0] * num_warps  # flat program counter per warp
    # ready_at[w][i] = cycle when body-slot i's latest result is available
    ready_at = [[0] * n for _ in range(num_warps)]
    issued = 0
    per_unit: Dict[str, int] = {}
    cycle = 0
    replay_acc = 0.0
    warp_order = list(range(num_warps))

    while issued < total_insts and cycle < max_cycles:
        cycle += 1
        slots = device.num_warp_schedulers
        unit_budget = {u: THROUGHPUT[u] for u in THROUGHPUT}
        # int/fp32 share the core pipes
        core_budget = THROUGHPUT["fp32"]
        issued_this_cycle = []
        for w in warp_order:
            if slots == 0:
                break
            p = pc[w]
            if p >= per_warp_insts:
                continue
            slot = p % n
            ins = program.body[slot]
            # dependency check (previous-iteration semantics for deps >= slot)
            ready = True
            for d in ins.deps:
                if ready_at[w][d] > cycle:
                    ready = False
                    break
            if not ready:
                continue
            # unit acceptance (fp32 may replay on an RF bank conflict)
            if ins.unit in ("fp32", "int"):
                cost = 1.0
                if ins.unit == "fp32" and fp32_replay_rate > 0.0:
                    replay_acc += fp32_replay_rate
                    if replay_acc >= 1.0:
                        replay_acc -= 1.0
                        cost = 2.0
                if core_budget < cost:
                    continue
                core_budget -= cost
            else:
                if unit_budget[ins.unit] < 1.0:
                    continue
                unit_budget[ins.unit] -= 1.0
            # issue
            pc[w] += 1
            ready_at[w][slot] = cycle + LATENCY[ins.unit]
            issued += 1
            per_unit[ins.unit] = per_unit.get(ins.unit, 0) + 1
            slots -= 1
            issued_this_cycle.append(w)
        # oldest-first rotation: move issued warps to the back
        for w in issued_this_cycle:
            warp_order.remove(w)
            warp_order.append(w)

    if issued < total_insts:
        raise RuntimeError("simulation hit max_cycles before the program finished")
    return SmSimResult(
        cycles=cycle,
        instructions=issued,
        issue_slots=cycle * device.num_warp_schedulers,
        per_unit_issued=per_unit,
    )


def gemm_inner_loop(style: str = "cudac", kc: int = 8) -> WarpProgram:
    """The rank-1-update inner loop as a warp program.

    Per k-step a thread issues 8 operand LDS.64 (the 8+8 microtile
    operands) and 64 FFMA; we simulate the half-step slice 4 LDS + 32
    FFMA + 1 index op, preserving the 8:1 FFMA-to-load ratio.

    * ``"cudac"``: the compiler interleaves conservatively — each FFMA
      group depends on the immediately preceding loads, and loads depend
      on the index arithmetic just before them;
    * ``"assembly"``: maxas-style software pipelining — loads for step
      k+1 are hoisted so FFMAs depend only on loads issued a full
      iteration earlier (dependency distance = one body length).
    """
    if style not in ("cudac", "assembly"):
        raise ValueError("style must be 'cudac' or 'assembly'")
    body: List[WarpInstr] = []
    if style == "cudac":
        body.append(WarpInstr("int"))  # address arithmetic feeding the loads
        lds = []
        for _ in range(4):
            body.append(WarpInstr("smem", deps=(0,)))
            lds.append(len(body) - 1)
        for i in range(32):
            # each FFMA consumes this step's freshly loaded operands
            body.append(WarpInstr("fp32", deps=(lds[i % 4],)))
    else:
        # software-pipelined layout: this iteration's FFMAs consume the
        # loads issued at the *end of the previous iteration* (their body
        # indices come after the FFMAs, which the simulator interprets as
        # previous-iteration results) — a full body of latency to hide.
        n_ffma = 32
        lds_base = 1 + n_ffma
        body.append(WarpInstr("int"))
        for i in range(n_ffma):
            body.append(WarpInstr("fp32", deps=(lds_base + i % 4,)))
        for _ in range(4):
            body.append(WarpInstr("smem"))
    return WarpProgram(tuple(body), iterations=kc * 4)
