"""CTA scheduler model: wave quantization and device fill.

The hardware scheduler launches CTAs onto SMs as resources free up.  For
regular kernels (every CTA does the same work — true for all kernels here)
execution proceeds in *waves* of ``blocks_per_sm x num_sms`` CTAs, and the
last partial wave runs at reduced device utilization.  This tail effect is
what makes the paper's smallest problem (M = N = 1024, a 64-CTA grid on a
13-SM part) behave differently from the large-M sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..obs.metrics import DEFAULT_RATIO_BUCKETS, active_metrics
from .device import DeviceSpec
from .occupancy import occupancy

__all__ = ["SchedulePlan", "plan_schedule"]


@dataclass(frozen=True)
class SchedulePlan:
    """How a grid maps onto the device over time."""

    grid_blocks: int
    blocks_per_sm: int
    concurrent_blocks: int  # device-wide
    waves: int
    #: average fraction of CTA slots busy over the whole execution
    utilization: float
    warps_per_sm: int
    occupancy: float

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must lie in (0, 1]")


def plan_schedule(
    device: DeviceSpec,
    grid_blocks: int,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
) -> SchedulePlan:
    """Compute wave structure and average utilization for one launch."""
    if grid_blocks <= 0:
        raise ValueError("grid must contain at least one block")
    occ = occupancy(device, threads_per_block, regs_per_thread, smem_per_block)
    concurrent = occ.blocks_per_sm * device.num_sms
    waves = math.ceil(grid_blocks / concurrent)
    utilization = grid_blocks / (waves * concurrent)
    m = active_metrics()
    if m is not None:
        m.counter("gpu.sched.launches").inc()
        m.counter("gpu.sched.waves").inc(waves)
        m.histogram("gpu.sched.utilization", DEFAULT_RATIO_BUCKETS).observe(utilization)
        m.histogram("gpu.sched.occupancy", DEFAULT_RATIO_BUCKETS).observe(occ.occupancy)
    return SchedulePlan(
        grid_blocks=grid_blocks,
        blocks_per_sm=occ.blocks_per_sm,
        concurrent_blocks=concurrent,
        waves=waves,
        utilization=utilization,
        warps_per_sm=occ.warps_per_sm,
        occupancy=occ.occupancy,
    )
