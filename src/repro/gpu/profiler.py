"""nvprof-style counter aggregation.

The paper reports whole-application metrics assembled from per-kernel
profiler output: FLOP efficiency is "a weighted sum ... based on total
cycle count" (section V-A), MPKI divides L2 misses by thread-level
instructions (Fig. 2), and the transaction plots (Fig. 8) sum 32-byte
sector counts over every kernel in the pipeline.  :class:`ProfiledRun`
performs those aggregations from ``(KernelLaunch, seconds)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .device import DeviceSpec
from .kernel import KernelCounters, KernelLaunch

__all__ = ["KernelProfile", "ProfiledRun", "format_nvprof"]


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's launch descriptor plus its modelled runtime."""

    launch: KernelLaunch
    seconds: float

    def __post_init__(self) -> None:
        # zero is legal: degenerate edge sweeps (M=0/N=0 tiles masked out)
        # model kernels that cost nothing, and aggregation must not crash
        if self.seconds < 0:
            raise ValueError("kernel time cannot be negative")

    @property
    def flop_rate(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.launch.counters.flops / self.seconds

    def flop_efficiency(self, device: DeviceSpec) -> float:
        """Achieved / peak single-precision FLOP rate for this kernel."""
        return self.flop_rate / device.peak_flops_sp


class ProfiledRun:
    """A profiled multi-kernel run of one kernel-summation implementation."""

    def __init__(self, name: str, device: DeviceSpec, profiles: Sequence[KernelProfile]) -> None:
        if not profiles:
            raise ValueError("a run needs at least one kernel")
        self.name = name
        self.device = device
        self.profiles = list(profiles)

    # -- time ----------------------------------------------------------------
    @property
    def kernel_seconds(self) -> float:
        return sum(p.seconds for p in self.profiles)

    @property
    def total_seconds(self) -> float:
        """Kernel time plus per-launch host overhead."""
        return self.kernel_seconds + len(self.profiles) * self.device.kernel_launch_overhead_s

    # -- aggregated counters ---------------------------------------------------
    @property
    def counters(self) -> KernelCounters:
        total = self.profiles[0].launch.counters
        for p in self.profiles[1:]:
            total = total.merged_with(p.launch.counters)
        return total

    @property
    def flops(self) -> float:
        return self.counters.flops

    @property
    def thread_instructions(self) -> float:
        return self.counters.thread_instructions

    @property
    def l2_transactions(self) -> float:
        return self.counters.l2_transactions

    @property
    def dram_transactions(self) -> float:
        return self.counters.dram.transactions(self.device.dram_transaction_bytes)

    # -- derived metrics ---------------------------------------------------
    def flop_efficiency(self) -> float:
        """Cycle-weighted FLOP efficiency across the pipeline (section V-A)."""
        total = self.kernel_seconds
        if total == 0:
            return 0.0
        return sum(
            p.flop_efficiency(self.device) * (p.seconds / total) for p in self.profiles
        )

    def l2_mpki(self) -> float:
        """L2 misses per kilo thread-instruction.

        Under the write-allocate model every DRAM read transaction group of
        ``l2_line_bytes`` corresponds to one L2 miss (line fill).
        """
        misses = self.counters.dram.read_bytes / self.device.l2_line_bytes
        instructions = self.thread_instructions
        if instructions <= 0:
            return 0.0  # degenerate zero-work runs execute no instructions
        return 1000.0 * misses / instructions

    def summary(self) -> dict:
        """Flat metric dict for reports and tests."""
        return {
            "name": self.name,
            "kernels": len(self.profiles),
            "kernel_seconds": self.kernel_seconds,
            "total_seconds": self.total_seconds,
            "flops": self.flops,
            "flop_efficiency": self.flop_efficiency(),
            "l2_transactions": self.l2_transactions,
            "dram_transactions": self.dram_transactions,
            "dram_bytes": self.counters.dram.total_bytes,
            "l2_mpki": self.l2_mpki(),
            "smem_transactions": self.counters.smem_transactions,
            "atomics": self.counters.atomics,
        }


def format_nvprof(run: "ProfiledRun") -> str:
    """Render a run the way ``nvprof`` summarizes it (section IV's tool).

    One row per kernel: time, share of total, and the headline counters.
    """
    total = run.kernel_seconds or 1.0  # all-zero-cost runs: avoid 0/0 shares
    header = (
        f"{'Time(%)':>8}  {'Time':>10}  {'FLOP eff':>9}  {'DRAM MB':>9}  "
        f"{'L2 Mtx':>8}  Name"
    )
    lines = [f"==PROF== Profiling result ({run.name} on {run.device.name}):", header]
    for p in run.profiles:
        c = p.launch.counters
        lines.append(
            f"{100 * p.seconds / total:7.2f}%  "
            f"{p.seconds * 1e3:8.3f}ms  "
            f"{100 * p.flop_efficiency(run.device):8.2f}%  "
            f"{c.dram.total_bytes / 1e6:9.1f}  "
            f"{c.l2_transactions / 1e6:8.2f}  "
            f"{p.launch.name}"
        )
    lines.append(
        f"{'':8}  {total * 1e3:8.3f}ms  total "
        f"(+{len(run.profiles)} launches x "
        f"{run.device.kernel_launch_overhead_s * 1e6:.0f} us overhead)"
    )
    return "\n".join(lines)
