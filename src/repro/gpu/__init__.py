"""Maxwell-class GPU substrate.

Everything the performance and energy layers know about the hardware lives
here: the device description (:mod:`~repro.gpu.device`), the occupancy
calculator (:mod:`~repro.gpu.occupancy`), banked shared memory
(:mod:`~repro.gpu.sharedmem`), the coalescer (:mod:`~repro.gpu.coalescing`),
a trace-driven L2 simulator (:mod:`~repro.gpu.l2cache`), the DRAM channel
model (:mod:`~repro.gpu.dram`), a miniature SIMT interpreter used to verify
warp-level claims (:mod:`~repro.gpu.simt`), and launch/profile containers
(:mod:`~repro.gpu.kernel`, :mod:`~repro.gpu.profiler`).
"""

from .atomics import AtomicCostModel, atomic_reduction_cycles
from .coalescing import coalesce, transaction_count
from .device import DEVICE_PRESETS, FERMI_GTX580, GTX970, GTX980, DeviceSpec, get_device
from .dram import DramModel, DramTraffic
from .isa import OPCODES, InstructionMix, Op, Unit
from .kernel import KernelCounters, KernelLaunch
from .l1cache import ReadOnlyCache, filtered_l2_transactions
from .l2cache import CacheStats, L2Cache
from .occupancy import OccupancyResult, max_blocks_for_kernel, occupancy
from .profiler import KernelProfile, ProfiledRun, format_nvprof
from .scheduler import SchedulePlan, plan_schedule
from .sharedmem import AccessStats, SharedMemory, warp_conflicts, warp_transactions
from .simt import Block, BlockRunStats, DeadlockError, LockstepError, ThreadCtx
from .assembler import AssemblyError, assemble, parse_listing
from .warpsim import SmSimResult, WarpInstr, WarpProgram, gemm_inner_loop, simulate_sm

__all__ = [
    "DeviceSpec",
    "GTX970",
    "GTX980",
    "FERMI_GTX580",
    "DEVICE_PRESETS",
    "get_device",
    "InstructionMix",
    "Op",
    "OPCODES",
    "Unit",
    "OccupancyResult",
    "occupancy",
    "max_blocks_for_kernel",
    "SharedMemory",
    "AccessStats",
    "warp_transactions",
    "warp_conflicts",
    "coalesce",
    "transaction_count",
    "AtomicCostModel",
    "atomic_reduction_cycles",
    "L2Cache",
    "CacheStats",
    "ReadOnlyCache",
    "filtered_l2_transactions",
    "DramModel",
    "DramTraffic",
    "KernelCounters",
    "KernelLaunch",
    "KernelProfile",
    "ProfiledRun",
    "format_nvprof",
    "SchedulePlan",
    "plan_schedule",
    "Block",
    "BlockRunStats",
    "ThreadCtx",
    "LockstepError",
    "DeadlockError",
    "WarpInstr",
    "WarpProgram",
    "SmSimResult",
    "simulate_sm",
    "gemm_inner_loop",
    "assemble",
    "parse_listing",
    "AssemblyError",
]
