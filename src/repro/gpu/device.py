"""GPU device specifications.

The paper evaluates on an NVIDIA GTX970 (Maxwell, compute capability 5.2);
its Table I lists the architectural limits that drive the occupancy
calculation and the performance model.  :class:`DeviceSpec` captures those
limits plus the derived peak throughputs every other module consumes.

Specs are frozen dataclasses so a device can be shared freely between the
occupancy calculator, the timing model, and the energy model without any
risk of one of them mutating the configuration mid-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "DeviceSpec",
    "GTX970",
    "GTX980",
    "FERMI_GTX580",
    "DEVICE_PRESETS",
    "get_device",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a CUDA-class GPU.

    The fields in the first block mirror the paper's Table I; the second
    block adds the clock/width/bandwidth figures needed to turn instruction
    and transaction counts into time and energy.  All sizes are in bytes
    unless the name says otherwise.
    """

    name: str
    # --- Table I fields -------------------------------------------------
    num_sms: int
    max_threads_per_block: int
    warp_size: int
    max_threads_per_sm: int
    registers_per_sm: int  # number of 32-bit registers
    max_registers_per_thread: int
    shared_mem_per_sm: int  # bytes
    shared_mem_bank_size: int  # bytes per bank
    num_shared_mem_banks: int
    num_warp_schedulers: int
    l2_size: int  # bytes
    # --- performance-model fields ---------------------------------------
    core_clock_hz: float  # SM clock
    mem_clock_hz: float  # effective memory data rate clock
    cuda_cores_per_sm: int
    dram_bus_bits: int  # memory interface width
    dram_transaction_bytes: int  # L2<->DRAM granularity (32B sectors on Maxwell)
    l2_transaction_bytes: int  # SM<->L2 granularity
    l2_line_bytes: int  # cache line for the L2 simulator
    l2_ways: int
    max_blocks_per_sm: int
    shared_mem_per_block_limit: int
    register_allocation_granularity: int  # registers rounded up per warp
    shared_mem_allocation_granularity: int  # bytes rounded up per block
    sfu_per_sm: int  # special-function units (MUFU: exp/rcp/sqrt)
    kernel_launch_overhead_s: float  # host-side per-launch overhead
    #: FP32-to-FP64 throughput ratio (32 on consumer Maxwell: 4 DP units/SM)
    fp64_throughput_ratio: int = 32

    # --- derived quantities ----------------------------------------------
    @property
    def max_warps_per_sm(self) -> int:
        """Warp-residency limit per SM (2048 threads / 32 = 64 on Maxwell)."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_flops_sp(self) -> float:
        """Peak single-precision FLOP/s (one FMA = 2 flops per core per cycle)."""
        return 2.0 * self.cuda_cores_per_sm * self.num_sms * self.core_clock_hz

    @property
    def peak_flops_dp(self) -> float:
        """Peak double-precision FLOP/s (consumer Maxwell: 1/32 of FP32)."""
        return self.peak_flops_sp / self.fp64_throughput_ratio

    @property
    def peak_dram_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/s (bus width x effective data rate)."""
        return self.dram_bus_bits / 8.0 * self.mem_clock_hz

    @property
    def peak_l2_bandwidth(self) -> float:
        """Approximate aggregate L2 bandwidth in bytes/s.

        Maxwell's L2 sustains roughly 2x the DRAM bandwidth to the SMs; this
        ratio is what gates kernels whose working set fits in L2 but not in
        shared memory.
        """
        return 2.0 * self.peak_dram_bandwidth

    @property
    def smem_bandwidth_per_sm(self) -> float:
        """Shared-memory bandwidth of one SM in bytes/s (all banks, no conflicts)."""
        return self.num_shared_mem_banks * self.shared_mem_bank_size * self.core_clock_hz

    @property
    def issue_slots_per_sm_per_cycle(self) -> int:
        """Instruction issue slots per SM per cycle (one per warp scheduler)."""
        return self.num_warp_schedulers

    @property
    def fma_throughput_per_sm_per_cycle(self) -> float:
        """FFMA instructions retired per SM per cycle (warp-level)."""
        return self.cuda_cores_per_sm / self.warp_size

    @property
    def sfu_throughput_per_sm_per_cycle(self) -> float:
        """MUFU (special-function) instructions per SM per cycle (warp-level)."""
        return self.sfu_per_sm / self.warp_size

    @property
    def lsu_throughput_per_sm_per_cycle(self) -> float:
        """LD/ST (global/local) instructions per SM per cycle (warp-level).

        Maxwell-class SMs retire one warp-wide load/store per cycle (32
        LD/ST units); the timing model has always assumed this rate and
        the slot-issue model names it explicitly.
        """
        return 1.0

    @property
    def smem_throughput_per_sm_per_cycle(self) -> float:
        """Shared-memory transactions per SM per cycle (all banks, one warp)."""
        return 1.0

    @property
    def branch_throughput_per_sm_per_cycle(self) -> float:
        """Branch/barrier/predicate instructions per SM per cycle (warp-level)."""
        return 1.0

    def slot_limits(self) -> dict:
        """Per-engine issue-slot limits, in warp instructions per SM per cycle.

        The engines are the per-issue-slot resources the saturation model
        (:mod:`repro.perf.slots`) accounts against: CUDA-core ALU slots
        (FP32 + integer share the cores on Maxwell), SFU slots, LD/ST
        slots, the shared-memory pipe, branch/control slots, and the warp
        schedulers' raw issue slots.
        """
        return {
            "alu": self.fma_throughput_per_sm_per_cycle,
            "sfu": self.sfu_throughput_per_sm_per_cycle,
            "ldst": self.lsu_throughput_per_sm_per_cycle,
            "smem": self.smem_throughput_per_sm_per_cycle,
            "branch": self.branch_throughput_per_sm_per_cycle,
            "issue": float(self.issue_slots_per_sm_per_cycle),
        }

    @property
    def l2_num_sets(self) -> int:
        return self.l2_size // (self.l2_line_bytes * self.l2_ways)

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check internal consistency; raises ``ValueError`` on nonsense."""
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise ValueError("warp_size and num_sms must be positive")
        if self.max_threads_per_sm % self.warp_size:
            raise ValueError("max_threads_per_sm must be a multiple of warp_size")
        if self.l2_size % (self.l2_line_bytes * self.l2_ways):
            raise ValueError("L2 size must be divisible by line size x ways")
        if self.dram_transaction_bytes > self.l2_line_bytes:
            raise ValueError("DRAM transaction cannot exceed the L2 line size")


#: The paper's evaluation platform (Table I + GTX970 datasheet values).
#: The GTX970 has 13 SMs with 128 CUDA cores each, 1.75 MB of L2, a 256-bit
#: GDDR5 interface at 7 GHz effective, and a ~1.18 GHz boost clock.
GTX970 = DeviceSpec(
    name="GTX970",
    num_sms=13,
    max_threads_per_block=1024,
    warp_size=32,
    max_threads_per_sm=2048,
    registers_per_sm=64 * 1024,
    max_registers_per_thread=255,
    shared_mem_per_sm=96 * 1024,
    shared_mem_bank_size=4,
    num_shared_mem_banks=32,
    num_warp_schedulers=4,
    l2_size=1792 * 1024,  # 1.75 MB
    core_clock_hz=1.178e9,
    mem_clock_hz=7.0e9,
    cuda_cores_per_sm=128,
    dram_bus_bits=256,
    dram_transaction_bytes=32,
    l2_transaction_bytes=32,
    l2_line_bytes=128,
    l2_ways=16,
    max_blocks_per_sm=32,
    shared_mem_per_block_limit=48 * 1024,
    register_allocation_granularity=256,
    shared_mem_allocation_granularity=256,
    sfu_per_sm=32,
    kernel_launch_overhead_s=5.0e-6,
)

#: A fuller Maxwell part, for cross-device what-if studies.
GTX980 = GTX970.with_overrides(
    name="GTX980",
    num_sms=16,
    l2_size=2048 * 1024,
    core_clock_hz=1.216e9,
)

#: A Fermi-like preset (the architecture the paper contrasts in section II.C:
#: shared memory carved out of L1, narrower SMEM, fewer schedulers).
FERMI_GTX580 = DeviceSpec(
    name="GTX580",
    num_sms=16,
    max_threads_per_block=1024,
    warp_size=32,
    max_threads_per_sm=1536,
    registers_per_sm=32 * 1024,
    max_registers_per_thread=63,
    shared_mem_per_sm=48 * 1024,
    shared_mem_bank_size=4,
    num_shared_mem_banks=32,
    num_warp_schedulers=2,
    l2_size=768 * 1024,
    core_clock_hz=1.544e9,
    mem_clock_hz=4.008e9,
    cuda_cores_per_sm=32,
    dram_bus_bits=384,
    dram_transaction_bytes=32,
    l2_transaction_bytes=32,
    l2_line_bytes=128,
    l2_ways=16,
    max_blocks_per_sm=8,
    shared_mem_per_block_limit=48 * 1024,
    register_allocation_granularity=64,
    shared_mem_allocation_granularity=128,
    sfu_per_sm=4,
    kernel_launch_overhead_s=5.0e-6,
)

DEVICE_PRESETS = {d.name: d for d in (GTX970, GTX980, FERMI_GTX580)}


def get_device(name: str = "GTX970") -> DeviceSpec:
    """Look up a device preset by name (case-insensitive)."""
    key = name.upper()
    if key not in DEVICE_PRESETS:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICE_PRESETS)}")
    return DEVICE_PRESETS[key]


for _d in DEVICE_PRESETS.values():
    _d.validate()
