"""GDDR5 DRAM channel model.

Converts transaction counts into time and exposes the efficiency knobs the
timing model needs: peak bandwidth comes from :class:`~repro.gpu.device.
DeviceSpec`; sustained bandwidth is peak scaled by a row-locality-dependent
efficiency.  Streaming access patterns (the GEMM tile fetches and the
unfused pipeline's intermediate-matrix traffic are both fully sequential
per CTA) run near the high end; scattered atomics run near the low end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import active_metrics
from .device import DeviceSpec

__all__ = ["DramModel", "DramTraffic"]


@dataclass(frozen=True)
class DramTraffic:
    """Bytes moved between L2 and DRAM for one kernel."""

    read_bytes: float
    write_bytes: float

    def __post_init__(self) -> None:
        if self.read_bytes < 0 or self.write_bytes < 0:
            raise ValueError("traffic cannot be negative")

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    def transactions(self, transaction_bytes: int = 32) -> float:
        """32-byte DRAM transactions (the unit of the paper's Fig. 8b)."""
        return self.total_bytes / transaction_bytes

    def __add__(self, other: "DramTraffic") -> "DramTraffic":
        return DramTraffic(
            self.read_bytes + other.read_bytes,
            self.write_bytes + other.write_bytes,
        )


class DramModel:
    """Timing and accounting for one device's DRAM subsystem."""

    #: Fraction of peak bandwidth sustained by long sequential streams.
    STREAMING_EFFICIENCY = 0.80
    #: Fraction of peak sustained by scattered / random-ish accesses.
    SCATTERED_EFFICIENCY = 0.35

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    @property
    def peak_bandwidth(self) -> float:
        return self.device.peak_dram_bandwidth

    def sustained_bandwidth(self, streaming_fraction: float = 1.0) -> float:
        """Effective bytes/s for a mix of streaming and scattered traffic."""
        if not 0.0 <= streaming_fraction <= 1.0:
            raise ValueError("streaming_fraction must lie in [0, 1]")
        eff = (
            streaming_fraction * self.STREAMING_EFFICIENCY
            + (1.0 - streaming_fraction) * self.SCATTERED_EFFICIENCY
        )
        return eff * self.peak_bandwidth

    def transfer_time(self, traffic: DramTraffic, streaming_fraction: float = 1.0) -> float:
        """Seconds needed to move ``traffic`` at the sustained bandwidth."""
        seconds = traffic.total_bytes / self.sustained_bandwidth(streaming_fraction)
        m = active_metrics()
        if m is not None:
            m.counter("gpu.dram.read_bytes").inc(traffic.read_bytes)
            m.counter("gpu.dram.write_bytes").inc(traffic.write_bytes)
            m.counter("gpu.dram.sectors").inc(
                traffic.transactions(self.device.dram_transaction_bytes)
            )
            m.histogram("gpu.dram.transfer_seconds").observe(seconds)
        return seconds
