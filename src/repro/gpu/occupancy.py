"""CUDA occupancy calculator.

Reproduces the resource arithmetic of NVIDIA's occupancy calculator for the
limits the paper discusses in section III-A: registers per thread, shared
memory per block, threads per block, and the per-SM block cap.  The paper's
design point — 16x16 threads, 96–128 registers/thread, two 2x(128x8 + 8x128)
float tile buffers — lands on **two concurrent CTAs per SM**, which is the
occupancy every timing estimate in the paper assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["OccupancyResult", "occupancy", "max_blocks_for_kernel"]


def _round_up(value: int, granularity: int) -> int:
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return ((value + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    occupancy: float  # active warps / max warps
    limiter: str  # which resource capped residency
    regs_per_block: int
    smem_per_block: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.occupancy <= 1.0:
            raise ValueError("occupancy must lie in [0, 1]")


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
) -> OccupancyResult:
    """Compute achievable CTAs/SM for a kernel resource footprint.

    Parameters mirror what ``nvcc --ptxas-options=-v`` reports.  Raises
    ``ValueError`` if the kernel cannot launch at all (zero blocks fit).
    """
    if threads_per_block <= 0 or threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"threads_per_block={threads_per_block} outside (0, "
            f"{device.max_threads_per_block}]"
        )
    if regs_per_thread < 0 or regs_per_thread > device.max_registers_per_thread:
        raise ValueError(
            f"regs_per_thread={regs_per_thread} outside [0, "
            f"{device.max_registers_per_thread}]"
        )
    if smem_per_block < 0:
        raise ValueError("smem_per_block cannot be negative")

    warps_per_block = math.ceil(threads_per_block / device.warp_size)

    # Register allocation is per warp, rounded to the allocation granularity.
    regs_per_warp = _round_up(
        regs_per_thread * device.warp_size, device.register_allocation_granularity
    )
    regs_per_block = regs_per_warp * warps_per_block

    smem_alloc = _round_up(max(smem_per_block, 1), device.shared_mem_allocation_granularity)

    limits = {
        "threads": device.max_threads_per_sm // (warps_per_block * device.warp_size),
        "blocks": device.max_blocks_per_sm,
        "registers": (device.registers_per_sm // regs_per_block) if regs_per_block else 10**9,
        "shared_memory": device.shared_mem_per_sm // smem_alloc,
    }
    if smem_per_block > device.shared_mem_per_block_limit:
        raise ValueError(
            f"smem_per_block={smem_per_block} exceeds the per-block limit "
            f"{device.shared_mem_per_block_limit}"
        )

    blocks = min(limits.values())
    if blocks <= 0:
        raise ValueError("kernel resource footprint too large: zero blocks fit on an SM")
    limiter = min(limits, key=lambda k: limits[k])

    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        threads_per_sm=warps * device.warp_size,
        occupancy=warps / device.max_warps_per_sm,
        limiter=limiter,
        regs_per_block=regs_per_block,
        smem_per_block=smem_alloc,
    )


def max_blocks_for_kernel(
    device: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
    grid_blocks: int,
) -> int:
    """Blocks resident device-wide, clamped by the grid size.

    Small grids underfill the device — this matters for the paper's
    M=N=1024 points, where only 64 CTAs exist for 13 SMs.
    """
    occ = occupancy(device, threads_per_block, regs_per_thread, smem_per_block)
    return min(grid_blocks, occ.blocks_per_sm * device.num_sms)
