"""A miniature SASS-like assembler for warp programs.

The paper's performance ceiling discussion revolves around instruction
scheduling that CUDA-C cannot express — maxas exists precisely because
"NVIDIA do not release official assembler".  This module provides the
analysis half of such a tool: it parses a SASS-flavoured listing into a
:class:`~repro.gpu.warpsim.WarpProgram`, deriving the dependency edges
from register dataflow instead of asking the author to annotate them, so
scheduling variants can be written as listings and measured on the warp
simulator.

Syntax (one instruction per line, ``#`` comments, case-insensitive):

    FFMA R4, R0, R1, R4      # dst, srcs...
    LDS.64 R0, [R20]         # loads write dst pairs (R0, R1 for .64)
    LDS.128 R8, [R21]        # ...quads for .128
    STS [R22], R4            # stores read their operands
    LDG.128 R12, [R30]
    XMAD R20, R20, R21, R20
    BAR.SYNC
    MUFU.EX2 R5, R4

Registers are ``R<n>``; address operands ``[R<n>]`` read the register.
The loop semantics match :class:`WarpProgram`: the listing is a loop body,
and a read of a register whose last writer appears *later* in the body
depends on the previous iteration.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .warpsim import WarpInstr, WarpProgram

__all__ = ["AssemblyError", "parse_listing", "assemble"]


class AssemblyError(ValueError):
    """A listing line could not be parsed."""


#: opcode root -> (execution unit, destination register count)
_OPCODES: Dict[str, Tuple[str, int]] = {
    "FFMA": ("fp32", 1),
    "FADD": ("fp32", 1),
    "FMUL": ("fp32", 1),
    "MUFU": ("sfu", 1),
    "XMAD": ("int", 1),
    "IADD": ("int", 1),
    "MOV": ("int", 1),
    "LDS": ("smem", 1),
    "STS": ("smem", 0),
    "LDG": ("lsu", 1),
    "STG": ("lsu", 0),
    "RED": ("lsu", 0),
    "BAR": ("control", 0),
    "BRA": ("control", 0),
    "SETP": ("control", 0),
}

_REG = re.compile(r"^R(\d+)$", re.IGNORECASE)
_ADDR = re.compile(r"^\[R(\d+)(?:\s*\+\s*[-\w]+)?\]$", re.IGNORECASE)


def _width_of(opcode: str) -> int:
    """Vector width in registers from a ``.64`` / ``.128`` suffix."""
    if ".128" in opcode:
        return 4
    if ".64" in opcode:
        return 2
    return 1


def parse_listing(text: str) -> List[Tuple[str, List[int], List[int]]]:
    """Parse a listing into ``(unit, writes, reads)`` triples per line.

    ``writes``/``reads`` are register numbers; vector memory ops expand to
    their full register ranges.  Raises :class:`AssemblyError` with the
    offending line number on any syntax problem.
    """
    out: List[Tuple[str, List[int], List[int]]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        # normalize whitespace inside bracketed address operands so they
        # survive tokenization: "[R30 + 0x40]" -> "[R30+0x40]"
        line = re.sub(r"\[([^\]]*)\]", lambda m: "[" + m.group(1).replace(" ", "") + "]", line)
        parts = line.replace(",", " ").split()
        opcode = parts[0].upper()
        root = opcode.split(".")[0]
        if root not in _OPCODES:
            raise AssemblyError(f"line {lineno}: unknown opcode {opcode!r}")
        unit, n_dst = _OPCODES[root]
        width = _width_of(opcode)

        regs: List[int] = []
        reads: List[int] = []
        writes: List[int] = []
        operands = parts[1:]
        for i, op in enumerate(operands):
            m = _REG.match(op)
            a = _ADDR.match(op)
            if m:
                reg = int(m.group(1))
            elif a:
                reg = int(a.group(1))
                reads.append(reg)  # address registers are always read
                continue
            else:
                raise AssemblyError(f"line {lineno}: bad operand {op!r}")
            regs.append(reg)
        if n_dst:
            if not regs:
                raise AssemblyError(f"line {lineno}: {opcode} needs a destination")
            base = regs[0]
            writes.extend(range(base, base + width))
            reads.extend(regs[1:])
        else:
            reads.extend(regs)
        out.append((unit, writes, reads))
    if not out:
        raise AssemblyError("empty listing")
    return out


def assemble(text: str, iterations: int = 16) -> WarpProgram:
    """Assemble a listing into a :class:`WarpProgram`.

    Dependency edges come from register dataflow: each read depends on the
    body slot that last writes that register — the previous slot in
    program order if one exists, otherwise the last writer anywhere in the
    body (i.e. the previous loop iteration, the simulator's convention).
    """
    parsed = parse_listing(text)
    last_writer: Dict[int, int] = {}
    any_writer: Dict[int, int] = {}
    for idx, (_, writes, _) in enumerate(parsed):
        for r in writes:
            any_writer[r] = idx  # last write in the whole body

    instrs: List[WarpInstr] = []
    for idx, (unit, writes, reads) in enumerate(parsed):
        deps = set()
        for r in reads:
            if r in last_writer:
                deps.add(last_writer[r])
            elif r in any_writer:
                deps.add(any_writer[r])  # produced by the previous iteration
        deps.discard(idx)
        instrs.append(WarpInstr(unit, tuple(sorted(deps))))
        for r in writes:
            last_writer[r] = idx
    return WarpProgram(tuple(instrs), iterations=iterations)
