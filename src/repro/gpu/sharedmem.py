"""Banked shared-memory model with Maxwell conflict semantics.

Maxwell shared memory is organised as 32 banks of 4-byte words; all banks
share a row select (section II-C of the paper).  A warp's access is serviced
in one transaction unless two lanes touch *different 32-bit words that map to
the same bank*, in which case the instruction replays once per extra word.
Lanes reading the *same* word are broadcast for free, including partial
multicasts (several lanes on one word).

:func:`warp_transactions` implements exactly that rule on arrays of per-lane
word addresses; :class:`SharedMemory` wraps a backing store that also counts
transactions for every access issued through it, so the SIMT interpreter can
report real conflict numbers for the paper's Fig.-5 mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..faults.injector import active_injector
from ..obs.metrics import active_metrics

__all__ = [
    "warp_transactions",
    "warp_conflicts",
    "AccessStats",
    "SharedMemory",
]


def warp_transactions(
    word_addresses: Sequence[int] | np.ndarray,
    num_banks: int = 32,
    active_mask: Optional[Sequence[bool]] = None,
) -> int:
    """Number of shared-memory transactions for one warp-wide word access.

    ``word_addresses`` holds one 32-bit-word index per lane.  Inactive lanes
    (mask ``False``) do not participate.  Returns at least 1 for any access
    with an active lane; a conflict-free access returns exactly 1.
    """
    addrs = np.asarray(word_addresses, dtype=np.int64)
    if addrs.ndim != 1:
        raise ValueError("word_addresses must be one-dimensional (one entry per lane)")
    if active_mask is not None:
        mask = np.asarray(active_mask, dtype=bool)
        if mask.shape != addrs.shape:
            raise ValueError("active_mask must match word_addresses in length")
        addrs = addrs[mask]
    if addrs.size == 0:
        return 0
    if np.any(addrs < 0):
        raise ValueError("negative shared-memory word address")

    # Distinct words within one bank each need their own cycle, so the
    # transaction count is the occupancy of the busiest bank over the set of
    # *unique* words touched (duplicates are broadcast for free).  One
    # unique + one bincount replaces the former per-bank Python loop.
    unique_words = np.unique(addrs)
    per_bank = np.bincount(unique_words % num_banks, minlength=num_banks)
    return int(per_bank.max())


def warp_conflicts(
    word_addresses: Sequence[int] | np.ndarray,
    num_banks: int = 32,
    active_mask: Optional[Sequence[bool]] = None,
) -> int:
    """Replay count (transactions beyond the first) for a warp access."""
    t = warp_transactions(word_addresses, num_banks, active_mask)
    return max(0, t - 1)


@dataclass
class AccessStats:
    """Counters accumulated by a :class:`SharedMemory` instance."""

    load_requests: int = 0
    store_requests: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    per_request_conflicts: list = field(default_factory=list)

    @property
    def load_conflicts(self) -> int:
        return self.load_transactions - self.load_requests

    @property
    def store_conflicts(self) -> int:
        return self.store_transactions - self.store_requests

    @property
    def total_conflicts(self) -> int:
        return self.load_conflicts + self.store_conflicts

    def reset(self) -> None:
        self.load_requests = 0
        self.store_requests = 0
        self.load_transactions = 0
        self.store_transactions = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.per_request_conflicts.clear()


class SharedMemory:
    """A block's shared memory: float32 word array + transaction accounting.

    The store is addressed in 4-byte words.  :meth:`warp_load` and
    :meth:`warp_store` take per-lane word addresses (one warp at a time) and
    update :attr:`stats` with the transaction count computed under the
    banking rules above.  Vector (float2/float4) accesses pass ``width`` > 1;
    each word phase is charged independently, matching how the hardware
    splits wide LDS/STS into word-granularity bank cycles.
    """

    def __init__(self, num_words: int, num_banks: int = 32) -> None:
        if num_words <= 0:
            raise ValueError("shared memory must hold at least one word")
        self.num_banks = num_banks
        self.data = np.zeros(num_words, dtype=np.float32)
        self.stats = AccessStats()

    @property
    def num_words(self) -> int:
        return int(self.data.size)

    def _check(self, addrs: np.ndarray, width: int) -> None:
        if width not in (1, 2, 4):
            raise ValueError("access width must be 1, 2, or 4 words")
        if np.any(addrs < 0) or np.any(addrs + width > self.num_words):
            raise IndexError("shared-memory access out of bounds")
        if width > 1 and np.any(addrs % width):
            raise ValueError(f"{4 * width}-byte accesses must be {4 * width}-byte aligned")

    def warp_load(
        self,
        word_addresses: Sequence[int] | np.ndarray,
        width: int = 1,
        active_mask: Optional[Sequence[bool]] = None,
    ) -> np.ndarray:
        """Load ``width`` consecutive words per lane; returns (lanes, width)."""
        addrs = np.asarray(word_addresses, dtype=np.int64)
        self._check(addrs, width)
        tx = 0
        for phase in range(width):
            tx += warp_transactions(addrs + phase, self.num_banks, active_mask)
        self.stats.load_requests += 1
        self.stats.load_transactions += tx
        self.stats.per_request_conflicts.append(tx - width)
        m = active_metrics()
        if m is not None:
            m.counter("gpu.smem.load_transactions").inc(tx)
            m.counter("gpu.smem.bank_conflicts").inc(tx - width)
        lanes = addrs.size
        if active_mask is None:
            active = np.ones(lanes, dtype=bool)
        else:
            active = np.asarray(active_mask, dtype=bool)
        self.stats.bytes_read += int(active.sum()) * 4 * width
        out = np.zeros((lanes, width), dtype=np.float32)
        idx = addrs[active, None] + np.arange(width)[None, :]
        out[active] = self.data[idx]
        return out

    def warp_store(
        self,
        word_addresses: Sequence[int] | np.ndarray,
        values: np.ndarray,
        width: int = 1,
        active_mask: Optional[Sequence[bool]] = None,
    ) -> None:
        """Store ``width`` consecutive words per lane from ``values``."""
        addrs = np.asarray(word_addresses, dtype=np.int64)
        self._check(addrs, width)
        vals = np.asarray(values, dtype=np.float32).reshape(addrs.size, width)
        inj = active_injector()
        if inj is not None:
            vals = inj.corrupt_array("smem", vals, where="warp_store")
        tx = 0
        for phase in range(width):
            tx += warp_transactions(addrs + phase, self.num_banks, active_mask)
        self.stats.store_requests += 1
        self.stats.store_transactions += tx
        self.stats.per_request_conflicts.append(tx - width)
        m = active_metrics()
        if m is not None:
            m.counter("gpu.smem.store_transactions").inc(tx)
            m.counter("gpu.smem.bank_conflicts").inc(tx - width)
        lanes = addrs.size
        if active_mask is None:
            active = np.ones(lanes, dtype=bool)
        else:
            active = np.asarray(active_mask, dtype=bool)
        self.stats.bytes_written += int(active.sum()) * 4 * width
        idx = addrs[active, None] + np.arange(width)[None, :]
        self.data[idx] = vals[active]

    def as_array(self) -> np.ndarray:
        """Direct view of the backing store (for test assertions)."""
        return self.data
