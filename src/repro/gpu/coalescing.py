"""Global-memory coalescing model.

A warp's 32 lane addresses are merged into the minimal set of aligned
transactions before hitting the L2.  On Maxwell the L2 services 32-byte
sectors; a perfectly coalesced warp-wide float32 access therefore costs
four 32-byte transactions (128 contiguous bytes), while a strided access
can cost up to 32.

The coalescer is a pure function from byte addresses to transaction sector
addresses, so the L2 simulator can be trace-driven from the same address
streams the functional kernels actually touch.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["coalesce", "transaction_count", "contiguous_bytes_to_sectors"]


def coalesce(
    byte_addresses: Sequence[int] | np.ndarray,
    access_size: int = 4,
    sector_bytes: int = 32,
    active_mask: Optional[Sequence[bool]] = None,
) -> np.ndarray:
    """Unique aligned sector addresses touched by one warp access.

    ``byte_addresses`` holds the base byte address per lane; each lane reads
    ``access_size`` bytes.  Returns the sorted array of sector base
    addresses (multiples of ``sector_bytes``).
    """
    addrs = np.asarray(byte_addresses, dtype=np.int64)
    if addrs.ndim != 1:
        raise ValueError("byte_addresses must be one-dimensional")
    if access_size <= 0 or sector_bytes <= 0:
        raise ValueError("access_size and sector_bytes must be positive")
    if active_mask is not None:
        mask = np.asarray(active_mask, dtype=bool)
        addrs = addrs[mask]
    if addrs.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(addrs < 0):
        raise ValueError("negative global byte address")

    first = addrs // sector_bytes
    last = (addrs + access_size - 1) // sector_bytes
    # expand each lane's [first, last] sector range in one 2-D broadcast,
    # then unique-sort — no Python-level set loop
    span = int((last - first).max()) + 1
    candidates = first[:, None] + np.arange(span, dtype=np.int64)[None, :]
    sectors = np.unique(candidates[candidates <= last[:, None]])
    return sectors * sector_bytes


def transaction_count(
    byte_addresses: Sequence[int] | np.ndarray,
    access_size: int = 4,
    sector_bytes: int = 32,
    active_mask: Optional[Sequence[bool]] = None,
) -> int:
    """Number of sector transactions for one warp-wide access."""
    return int(
        coalesce(byte_addresses, access_size, sector_bytes, active_mask).size
    )


def contiguous_bytes_to_sectors(num_bytes: float, sector_bytes: int = 32) -> float:
    """Transactions needed to stream ``num_bytes`` contiguously.

    Used by the analytical traffic model, where streams are contiguous by
    construction; fractional inputs (expected values) are allowed.
    """
    if num_bytes < 0:
        raise ValueError("byte count cannot be negative")
    return num_bytes / sector_bytes
