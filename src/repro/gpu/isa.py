"""A small Maxwell-flavoured instruction cost model.

The performance layer counts *warp-level* instructions per kernel: one
``FFMA`` here means one fused-multiply-add issued for a whole warp (32
lanes).  Each opcode carries the two quantities the timing model needs:

* ``issue_cycles`` — scheduler issue slots consumed (dual-issue and replay
  effects are folded into the per-kernel efficiency factors instead);
* ``unit`` — which execution resource it occupies, so throughput limits
  (CUDA cores, SFUs, LSUs, shared memory) can each be applied separately.

This is deliberately *not* a functional ISA — the functional layer computes
with NumPy — it only has to be a faithful basis for instruction counting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = ["Unit", "Op", "OPCODES", "InstructionMix"]


class Unit(enum.Enum):
    """Execution resource an instruction occupies."""

    FP32 = "fp32"  # CUDA cores: FFMA/FADD/FMUL
    SFU = "sfu"  # special-function units: MUFU.EX2 etc.
    LSU = "lsu"  # load/store units: global and local traffic
    SMEM = "smem"  # shared-memory pipe: LDS/STS
    CONTROL = "control"  # branches, barriers, predicate setup
    INT = "int"  # XMAD/IADD index arithmetic
    ATOM = "atom"  # atomics resolved at the L2


@dataclass(frozen=True)
class Op:
    """One warp-level opcode in the cost model."""

    name: str
    unit: Unit
    issue_cycles: float = 1.0
    #: bytes moved per warp-level instruction (0 for pure compute)
    bytes_per_warp: int = 0
    #: floating point operations per warp-level instruction
    flops_per_warp: int = 0


def _op(name, unit, issue=1.0, bytes_=0, flops=0) -> Op:
    return Op(name, unit, issue, bytes_, flops)


#: The opcode table.  ``bytes_per_warp`` assumes float32 lanes; vectorized
#: 128-bit accesses (``.128`` suffix) move four times as much per lane.
OPCODES: Dict[str, Op] = {
    op.name: op
    for op in [
        _op("FFMA", Unit.FP32, flops=64),  # 32 lanes x (mul+add)
        _op("FADD", Unit.FP32, flops=32),
        _op("FMUL", Unit.FP32, flops=32),
        # MUFU.EX2 is the hardware exponential; exp(x) lowers to one FMUL
        # (scale by log2 e) plus MUFU.EX2.  Counted as 32 flops.
        _op("MUFU", Unit.SFU, flops=32),
        _op("LDG", Unit.LSU, bytes_=128),  # 32 lanes x 4B global load
        _op("LDG128", Unit.LSU, bytes_=512),  # float4 global load
        _op("STG", Unit.LSU, bytes_=128),
        _op("STG128", Unit.LSU, bytes_=512),
        _op("LDS", Unit.SMEM, bytes_=128),
        _op("LDS128", Unit.SMEM, bytes_=512),
        _op("STS", Unit.SMEM, bytes_=128),
        _op("STS128", Unit.SMEM, bytes_=512),
        _op("XMAD", Unit.INT),  # 16-bit mad, the Maxwell integer workhorse
        _op("IADD", Unit.INT),
        _op("MOV", Unit.INT),
        _op("SETP", Unit.CONTROL),
        _op("BRA", Unit.CONTROL),
        _op("BAR", Unit.CONTROL),  # barrier itself; the *wait* is modelled in timing
        _op("RED", Unit.ATOM, bytes_=128),  # atomicAdd without return value
        _op("ATOM", Unit.ATOM, bytes_=128),
    ]
}


@dataclass
class InstructionMix:
    """A multiset of warp-level instructions executed by a kernel.

    Counts are floats so analytical models may use expected values (for
    example a partially filled boundary tile contributes fractional work).
    """

    counts: Dict[str, float] = field(default_factory=dict)

    def add(self, opname: str, count: float = 1.0) -> "InstructionMix":
        """Add ``count`` executions of ``opname`` (must exist in ``OPCODES``)."""
        if opname not in OPCODES:
            raise KeyError(f"unknown opcode {opname!r}")
        if count < 0:
            raise ValueError("instruction count cannot be negative")
        self.counts[opname] = self.counts.get(opname, 0.0) + count
        return self

    def merge(self, other: "InstructionMix", times: float = 1.0) -> "InstructionMix":
        """Accumulate ``other`` scaled by ``times`` into this mix."""
        for name, c in other.counts.items():
            self.counts[name] = self.counts.get(name, 0.0) + c * times
        return self

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a new mix with every count multiplied by ``factor``."""
        return InstructionMix({k: v * factor for k, v in self.counts.items()})

    # --- aggregate queries ------------------------------------------------
    def total(self, units: Iterable[Unit] | None = None) -> float:
        """Total warp-level instructions, optionally restricted to ``units``."""
        if units is None:
            return sum(self.counts.values())
        allowed = set(units)
        return sum(c for n, c in self.counts.items() if OPCODES[n].unit in allowed)

    def issue_cycles(self) -> float:
        """Scheduler issue slots consumed by the whole mix."""
        return sum(c * OPCODES[n].issue_cycles for n, c in self.counts.items())

    def flops(self) -> float:
        """Total floating-point operations implied by the mix."""
        return sum(c * OPCODES[n].flops_per_warp for n, c in self.counts.items())

    def unit_cycles(self) -> Mapping[Unit, float]:
        """Instructions per execution unit (for per-unit throughput limits)."""
        out: Dict[Unit, float] = {}
        for n, c in self.counts.items():
            u = OPCODES[n].unit
            out[u] = out.get(u, 0.0) + c
        return out

    def bytes_moved(self, units: Iterable[Unit]) -> float:
        """Bytes moved by instructions executing on the given units."""
        allowed = set(units)
        return sum(
            c * OPCODES[n].bytes_per_warp
            for n, c in self.counts.items()
            if OPCODES[n].unit in allowed
        )

    def smem_bytes(self) -> float:
        return self.bytes_moved([Unit.SMEM])

    def global_bytes(self) -> float:
        return self.bytes_moved([Unit.LSU, Unit.ATOM])

    def thread_instructions(self, warp_size: int = 32) -> float:
        """Thread-level instruction count (what nvprof's MPKI denominator uses)."""
        return self.total() * warp_size
