"""Atomic-reduction contention model.

The fused kernel's inter-CTA reduction relies on ``atomicAdd``: "a thread
block immediately retires after it updates the final result ... and only
one thread block is allowed to update the final result at any time"
(section I).  Two effects bound the cost:

* **throughput**: the L2 ROP units process a fixed number of read-modify-
  write word updates per cycle device-wide;
* **serialization**: updates *to the same address* are dependent — each
  waits an L2 round trip for the previous one — so the hottest address
  forms a critical path.

:func:`atomic_reduction_cycles` returns the binding one of the two for a
given update histogram; the tests show why the paper's scheme (each CTA
updating a *different* 128-row slice, same-``by`` CTAs contending only
``gx``-deep) stays cheap while a naive single-accumulator design would
serialize catastrophically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.injector import active_injector
from ..obs.metrics import active_metrics, counter_inc

__all__ = ["AtomicCostModel", "atomic_reduction_cycles", "atomic_add_word"]

#: L2 read-modify-write round trip seen by dependent atomics (cycles)
L2_ATOMIC_RTT = 190.0
#: word updates the L2 can retire per cycle, device-wide
ATOMIC_THROUGHPUT = 64.0


def atomic_add_word(buffer: np.ndarray, index: int, value: float, where: str = "") -> None:
    """One functional ``atomicAdd`` on a float32 word of a global buffer.

    This is the commit point of the inter-CTA reduction: the SIMT
    interpreter routes every ``ctx.atomic_add`` through here, so the fault
    injector's ``"atomic"`` site can corrupt the operand at the moment it
    leaves the CTA — the exact hazard the fused kernel exposes by having no
    DRAM intermediate to cross-check.  A no-op passthrough when injection
    is disabled.
    """
    inj = active_injector()
    if inj is not None:
        value = inj.corrupt_scalar("atomic", value, where=where)
    counter_inc("gpu.atomic.updates")
    buffer[index] = np.float32(buffer[index]) + np.float32(value)


@dataclass(frozen=True)
class AtomicCostModel:
    """Cycle cost of one atomic reduction phase."""

    total_updates: float
    max_updates_per_address: float
    throughput_cycles: float
    serialization_cycles: float

    @property
    def cycles(self) -> float:
        """The binding constraint."""
        return max(self.throughput_cycles, self.serialization_cycles)

    @property
    def serialization_bound(self) -> bool:
        return self.serialization_cycles > self.throughput_cycles


def atomic_reduction_cycles(
    total_updates: float,
    max_updates_per_address: float,
    rtt_cycles: float = L2_ATOMIC_RTT,
    throughput: float = ATOMIC_THROUGHPUT,
) -> AtomicCostModel:
    """Cost of ``total_updates`` atomic word-adds with the given hot spot.

    ``max_updates_per_address`` is the depth of the most-contended address
    (``gx`` for the paper's per-row scheme: one update per CTA column).
    """
    if total_updates < 0 or max_updates_per_address < 0:
        raise ValueError("update counts cannot be negative")
    if max_updates_per_address > total_updates:
        raise ValueError("the hottest address cannot exceed the total")
    if rtt_cycles <= 0 or throughput <= 0:
        raise ValueError("rtt and throughput must be positive")
    cost = AtomicCostModel(
        total_updates=total_updates,
        max_updates_per_address=max_updates_per_address,
        throughput_cycles=total_updates / throughput,
        serialization_cycles=max_updates_per_address * rtt_cycles,
    )
    m = active_metrics()
    if m is not None:
        m.counter("gpu.atomic.modelled_updates").inc(total_updates)
        m.counter("gpu.atomic.serialization_cycles").inc(cost.serialization_cycles)
        m.counter("gpu.atomic.throughput_cycles").inc(cost.throughput_cycles)
    return cost
