"""Admission control and per-backend circuit breaking.

Both mechanisms exist for the same reason micro-batching does: a batched
service amplifies failure.  One slow worker stalls a whole batch, and an
unbounded queue converts a throughput deficit into unbounded latency for
*every* request.  So:

* :class:`AdmissionController` bounds the queue and sheds load with a
  typed :class:`~repro.errors.ServiceOverloadError` the moment either the
  depth bound or the latency-budget estimate (queue depth x EWMA service
  time) says a new request cannot be served in time.  The rejection
  carries a ``retry_after_s`` hint derived from the same estimate.

* :class:`CircuitBreaker` watches one execution backend.  ``failure_
  threshold`` consecutive failures/timeouts open it; while open, callers
  skip the backend entirely (the server degrades to the reference path)
  until ``reset_timeout_s`` has passed, at which point exactly one probe
  is let through half-open — success closes the breaker, failure re-opens
  it for another full timeout.  The clock is injectable so the chaos
  tests drive open -> half-open -> closed transitions in microseconds.

Neither object is asyncio-specific; both are plain, lock-free-in-the-
event-loop state machines the server calls from its single dispatcher
task (and the tests call directly).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import ServiceOverloadError
from ..obs.log import get_logger, log_event
from ..obs.metrics import active_metrics, counter_inc
from ..obs.slo import SloMonitor

__all__ = ["AdmissionController", "CircuitBreaker"]

_log = get_logger("serve.admission")

#: circuit breaker states
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class AdmissionController:
    """Bounded-queue admission with latency-aware load shedding."""

    def __init__(
        self,
        max_queue_depth: int = 64,
        max_wait_s: Optional[float] = None,
        latency_alpha: float = 0.2,
        slo_monitor: Optional[SloMonitor] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if not 0.0 < latency_alpha <= 1.0:
            raise ValueError("latency_alpha must lie in (0, 1]")
        self.max_queue_depth = max_queue_depth
        #: estimated queueing delay beyond which new work is shed (None = depth only)
        self.max_wait_s = max_wait_s
        self.latency_alpha = latency_alpha
        #: while a latency objective burns, the depth bound halves — the
        #: monitored signal closes the loop the EWMA only approximates
        self.slo_monitor = slo_monitor
        self.depth = 0
        self.ewma_service_s = 0.0
        self.shed_total = 0
        self.admitted_total = 0
        self.slo_shed_total = 0

    # -- service-time feedback --------------------------------------------
    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed request's service time into the EWMA."""
        if seconds < 0:
            return
        if self.ewma_service_s == 0.0:
            self.ewma_service_s = seconds
        else:
            a = self.latency_alpha
            self.ewma_service_s = a * seconds + (1.0 - a) * self.ewma_service_s

    def estimated_wait_s(self) -> float:
        """Expected queueing delay for a request admitted right now."""
        return self.depth * self.ewma_service_s

    # -- admission ---------------------------------------------------------
    def admit(self, request_id: Optional[str] = None) -> None:
        """Claim one queue slot or raise :class:`ServiceOverloadError`.

        ``request_id`` is correlation only — it rides the shed log record
        so a rejected request is attributable without a trace.
        """
        retry_after = max(self.estimated_wait_s(), self.ewma_service_s)
        if self.depth >= self.max_queue_depth:
            self._shed(
                f"queue full ({self.depth}/{self.max_queue_depth})",
                retry_after, request_id,
            )
        if self.max_wait_s is not None and self.estimated_wait_s() > self.max_wait_s:
            self._shed(
                f"estimated wait {self.estimated_wait_s():.3f}s exceeds "
                f"budget {self.max_wait_s:.3f}s",
                retry_after, request_id,
            )
        if self.slo_monitor is not None and self.slo_monitor.should_shed():
            tightened = max(1, self.max_queue_depth // 2)
            if self.depth >= tightened:
                self.slo_shed_total += 1
                counter_inc("serve.slo_shed")
                self._shed(
                    f"latency SLO burning: queue bound tightened to "
                    f"{tightened} ({self.depth} queued)",
                    retry_after, request_id,
                )
        self.depth += 1
        self.admitted_total += 1
        self._export_depth()

    def release(self) -> None:
        """Return one queue slot (request finished, cancelled, or shed later)."""
        self.depth = max(0, self.depth - 1)
        self._export_depth()

    def _shed(
        self, why: str, retry_after: float, request_id: Optional[str] = None
    ) -> None:
        self.shed_total += 1
        counter_inc("serve.shed")
        if request_id is not None:
            log_event(_log, 30, "admission.shed",
                      id=request_id, why=why, retry_after_s=retry_after)
        else:
            log_event(_log, 30, "admission.shed", why=why, retry_after_s=retry_after)
        raise ServiceOverloadError(
            f"request shed: {why}; retry after {retry_after:.3f}s",
            retry_after_s=retry_after,
        )

    def _export_depth(self) -> None:
        registry = active_metrics()
        if registry is not None:
            registry.gauge("serve.queue_depth").set(self.depth)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open recovery probe."""

    def __init__(
        self,
        backend: str = "batched",
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.backend = backend
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.trips_total = 0

    def allow(self) -> bool:
        """May the next call use this backend?

        While open, returns ``False`` until the reset timeout elapses;
        the first ``True`` after that is the half-open probe — exactly one
        in-flight probe, because the dispatcher is a single task and the
        state moves to ``half_open`` immediately.
        """
        if self.state == OPEN:
            assert self.opened_at is not None
            if self.clock() - self.opened_at >= self.reset_timeout_s:
                self.state = HALF_OPEN
                log_event(_log, 20, "breaker.half_open", backend=self.backend)
                return True
            return False
        return True

    def record_success(self) -> None:
        if self.state != CLOSED:
            log_event(_log, 20, "breaker.closed", backend=self.backend)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            if self.state != OPEN:
                self.trips_total += 1
                counter_inc("serve.breaker.trips")
                log_event(
                    _log, 30, "breaker.open",
                    backend=self.backend,
                    consecutive_failures=self.consecutive_failures,
                )
            self.state = OPEN
            self.opened_at = self.clock()
