"""Asyncio client for the kernel-summation service.

One connection multiplexes any number of in-flight requests: a reader
task routes each newline-JSON response to the future registered under its
request id, so callers can ``asyncio.gather`` dozens of :meth:`solve`
calls over a single socket — which is exactly the concurrency shape the
server's micro-batcher coalesces.

Deadlines are enforced twice, on purpose.  The budget rides inside the
request, so the *server* sheds work whose deadline lapsed while queued;
and the client arms its own ``asyncio.wait_for`` with the same budget, so
a stalled (or chaos-killed) server cannot hang the caller — either side
firing first yields the same typed
:class:`~repro.errors.DeadlineExceededError`.

Typed failure mapping (the client never returns a wrong answer silently):

===========  ==========================================================
status       raised / returned
===========  ==========================================================
``ok``       :class:`SolveResult`; checksum re-verified on receipt, and
             degraded answers re-emit :class:`DegradedResultWarning`
``overload`` :class:`~repro.errors.ServiceOverloadError` (retry_after_s)
``deadline`` :class:`~repro.errors.DeadlineExceededError`
``invalid``  :class:`~repro.errors.InvalidProblemError`
``error``    :class:`~repro.errors.TransientModelError`
===========  ==========================================================
"""

from __future__ import annotations

import asyncio
import itertools
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from ..errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    InvalidProblemError,
    ServiceOverloadError,
    TransientModelError,
)
from ..obs.context import new_context
from ..obs.log import get_logger, log_event
from ..obs.tracer import active_tracer
from .protocol import SolveRequest, SolveResponse, array_checksum, decode_message, encode_message

__all__ = ["ServeClient", "SolveResult"]

_log = get_logger("serve.client")

_request_ids = itertools.count(1)

#: per-line stream buffer bound; asyncio's 64 KiB default truncates the
#: response of any solve beyond a few thousand rows (a large-M
#: hierarchical answer is megabytes of JSON floats on one line)
STREAM_LIMIT = 1 << 27


@dataclass(frozen=True)
class SolveResult:
    """One verified answer from the service."""

    V: np.ndarray
    #: True when the answer came from the reference fallback path
    degraded: bool = False
    #: True when the server answered from the content-addressed store
    cached: bool = False
    #: how many requests shared the dispatch that produced this answer
    batch_size: int = 1
    #: modelled energy of the solve in picojoules (None = metering off)
    energy_pj: Optional[float] = None
    #: the trace context that handled this request, traceparent form
    #: (None = telemetry off end to end)
    trace: Optional[str] = None


class ServeClient:
    """``async with ServeClient(host, port) as client: await client.solve(...)``"""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._inflight: Dict[str, "asyncio.Future[SolveResponse]"] = {}
        self._write_lock = asyncio.Lock()

    # -- lifecycle ---------------------------------------------------------
    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=STREAM_LIMIT
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
        self._fail_inflight(ConnectionResetError("client closed"))

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    def _fail_inflight(self, error: BaseException) -> None:
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(error)
        self._inflight.clear()

    # -- wire --------------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    doc = decode_message(line)
                except InvalidProblemError:
                    log_event(_log, 30, "client.bad_frame")
                    continue
                kind = doc.get("type")
                if kind == "stats":
                    future = self._inflight.pop(str(doc.get("id", "")), None)
                    if future is not None and not future.done():
                        future.set_result(doc.get("snapshot", {}))
                    continue
                if kind != "result":
                    continue
                response = SolveResponse.from_payload(doc)
                future = self._inflight.pop(response.id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._fail_inflight(exc)
            return
        self._fail_inflight(ConnectionResetError("server closed the connection"))

    async def _send(self, payload: Dict[str, object]) -> None:
        assert self._writer is not None, "client is not connected"
        async with self._write_lock:
            self._writer.write(encode_message(payload))
            await self._writer.drain()

    # -- API ---------------------------------------------------------------
    async def ping(self, timeout_s: float = 5.0) -> bool:
        """Liveness probe (used by the CLI and the load generator warmup)."""
        assert self._reader is not None
        await self._send({"type": "ping"})
        # pong is not id-routed; the read loop ignores it, so race-free
        # probing just bounds how long the write round-trip may take.
        await asyncio.sleep(0)
        return not self._reader.at_eof()

    async def stats(self, timeout_s: float = 5.0) -> Dict[str, object]:
        """Fetch the server's telemetry snapshot (the ``repro top`` source)."""
        loop = asyncio.get_running_loop()
        stats_id = f"stats{next(_request_ids)}"
        future: "asyncio.Future[Dict[str, object]]" = loop.create_future()
        self._inflight[stats_id] = future  # type: ignore[assignment]
        try:
            await self._send({"type": "stats", "id": stats_id})
            return await asyncio.wait_for(future, timeout=timeout_s)
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"stats request exceeded its {timeout_s}s budget"
            ) from None
        finally:
            self._inflight.pop(stats_id, None)

    async def solve(
        self,
        request: SolveRequest,
        deadline_s: Optional[float] = None,
    ) -> SolveResult:
        """Solve one request; raises the typed error for every failure mode."""
        if deadline_s is None:
            deadline_s = request.deadline_s
        if not request.id or request.id in self._inflight:
            request = request.with_id(f"r{next(_request_ids)}")
        if deadline_s is not None and request.deadline_s != deadline_s:
            request = replace(request, deadline_s=deadline_s)
        if request.trace is None and active_tracer() is not None:
            # a tracing client roots the trace; the server continues it
            request = replace(request, trace=new_context().to_traceparent())
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SolveResponse]" = loop.create_future()
        self._inflight[request.id] = future
        try:
            await self._send({"type": "solve", **request.to_payload()})
            if deadline_s is not None:
                response = await asyncio.wait_for(future, timeout=deadline_s)
            else:
                response = await future
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"request {request.id} exceeded its {deadline_s}s budget"
            ) from None
        finally:
            self._inflight.pop(request.id, None)
        return self._interpret(request, response)

    def _interpret(self, request: SolveRequest, response: SolveResponse) -> SolveResult:
        if response.status == "overload":
            raise ServiceOverloadError(
                response.error or "service overloaded",
                retry_after_s=response.retry_after_s,
            )
        if response.status == "deadline":
            raise DeadlineExceededError(
                response.error or f"request {request.id} missed its deadline"
            )
        if response.status == "invalid":
            raise InvalidProblemError(response.error or "invalid request")
        if response.status != "ok":
            raise TransientModelError(
                response.error or f"server error for request {request.id}"
            )
        V = response.array()
        if array_checksum(V) != response.checksum:
            raise TransientModelError(
                f"response payload for {request.id} failed its checksum"
            )
        if response.degraded:
            warnings.warn(
                f"request {request.id} served by the degraded reference path",
                DegradedResultWarning,
                stacklevel=3,
            )
        return SolveResult(
            V=V,
            degraded=response.degraded,
            cached=response.cached,
            batch_size=response.batch_size,
            energy_pj=response.energy_pj,
            trace=response.trace,
        )
