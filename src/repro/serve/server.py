"""The asyncio kernel-summation server.

One process, one event loop, three moving parts:

* **connection handlers** read newline-JSON requests, run admission
  control, stamp the absolute deadline, and enqueue
  :class:`~repro.serve.batcher.BatchMember` entries; a per-request
  responder task writes the answer back when the dispatcher resolves it.
  A dropped connection cancels its pending members — abandoned work is
  torn down before it is dispatched, not computed into the void.

* **the dispatcher** (a single task) collects micro-batches, group-commits
  accept records to the write-ahead journal (one fsync per batch), and
  executes each compatibility group through the worker executor.  Results
  are checksum-verified; failures walk a retry ladder — whole-group
  retry per member, then the trusted reference path — under a per-backend
  :class:`~repro.serve.admission.CircuitBreaker`, so injected crashes,
  stalls, and corruptions become degraded-but-correct answers, never
  wrong ones and never hangs.

* **journal replay** runs before the listener opens: accepted-but-
  incomplete requests from a previous (possibly SIGKILL'd) process are
  re-resolved through the content-addressed store — anything the dead
  server finished is a warm hit, so nothing completed is ever executed
  twice — and marked complete.

Every stage exports metrics through :mod:`repro.obs.metrics` when
collection is armed: ``serve.queue_depth``, ``serve.shed``,
``serve.breaker.trips``, ``serve.latency_seconds``, ``serve.batch_size``
and friends (see docs/SERVING.md for the full table).

With telemetry armed the server also continues each request's trace
context end to end (admit -> dispatch -> resolve spans, with the shared
dispatch span *linking* back to every coalesced member — see
:mod:`repro.obs.context`), stamps per-request modelled ``energy_pj``
through :mod:`repro.obs.energy_meter`, feeds an optional
:class:`~repro.obs.slo.SloMonitor` whose burn rates tighten admission,
and answers the ``stats`` verb with a
:mod:`repro.obs.snapshot` document (the ``repro top`` data source).
All of it is absent — zero cost, bit-identical results — while disarmed.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.problem import ProblemSpec
from ..errors import InvalidProblemError, ReproError
from ..obs.context import TraceContext, bind_context, new_context, parse_traceparent
from ..obs.energy_meter import active_energy_meter
from ..obs.log import get_logger, log_event
from ..obs.metrics import MetricsRegistry, active_metrics, counter_inc
from ..obs.slo import SloMonitor
from ..obs.snapshot import telemetry_snapshot
from ..obs.tracer import active_tracer, span
from ..store.result_store import ResultStore
from .admission import AdmissionController, CircuitBreaker
from .batcher import (
    BatchMember,
    GroupResult,
    MicroBatcher,
    compute_group,
    compute_reference,
    group_by_key,
)
from .journal import RequestJournal
from .protocol import (
    SolveRequest,
    SolveResponse,
    array_checksum,
    decode_message,
    encode_message,
)

__all__ = ["ServerConfig", "KernelServer"]

_log = get_logger("serve.server")

#: histogram edges for end-to-end request latency (seconds)
LATENCY_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0)


@dataclass(frozen=True)
class ServerConfig:
    """Everything tunable about one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read KernelServer.port after start()
    #: "batched" coalesces requests; "sequential" dispatches one at a time
    #: (the baseline the serve benchmark beats)
    mode: str = "batched"
    max_batch_size: int = 16
    batch_delay_s: float = 0.002
    max_queue_depth: int = 64
    max_wait_s: Optional[float] = None
    default_deadline_s: Optional[float] = None
    breaker_threshold: int = 3
    breaker_reset_s: float = 2.0
    workers: int = 1
    #: route dense "fused" solves with M >= this through the hierarchical
    #: "fast" implementation (Gaussian kernel, K <= 3 only); None = off
    fast_threshold_m: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("batched", "sequential"):
            raise ValueError(f"unknown mode {self.mode!r}; use batched | sequential")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.fast_threshold_m is not None and self.fast_threshold_m < 1:
            raise ValueError("fast_threshold_m must be >= 1 (or None)")


class _Connection:
    """Book-keeping for one client connection."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.members: Set[BatchMember] = set()
        self.tasks: Set["asyncio.Task[None]"] = set()


class KernelServer:
    """Chaos-hardened asyncio front end over the kernel-summation engines."""

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        store: Optional[ResultStore] = None,
        journal: Optional[RequestJournal] = None,
        clock: Callable[[], float] = time.monotonic,
        slo_monitor: Optional[SloMonitor] = None,
    ) -> None:
        self.config = config
        self.store = store
        self.journal = journal
        self._clock = clock
        self._started_at = clock()
        self.slo_monitor = slo_monitor
        self.breaker = CircuitBreaker(
            backend="batched-engine",
            failure_threshold=config.breaker_threshold,
            reset_timeout_s=config.breaker_reset_s,
            clock=clock,
        )
        self.admission = AdmissionController(
            max_queue_depth=config.max_queue_depth,
            max_wait_s=config.max_wait_s,
            slo_monitor=slo_monitor,
        )
        batch = config.max_batch_size if config.mode == "batched" else 1
        delay = config.batch_delay_s if config.mode == "batched" else 0.0
        self.batcher = MicroBatcher(max_batch_size=batch, max_delay_s=delay)
        self.replayed_ids: List[str] = []
        self._queue: "asyncio.Queue[BatchMember]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: Set[_Connection] = set()
        self._busy = False
        self._closing = False

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        if self.journal is not None:
            await self._replay_journal()
            self.journal.open()
        from .client import STREAM_LIMIT

        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=STREAM_LIMIT,
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        log_event(_log, 20, "server.started",
                  host=self.config.host, port=self.port, mode=self.config.mode)

    async def stop(self) -> None:
        """Graceful: stop accepting, drain the queue, then tear down."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while not self._queue.empty() or self._busy:
            await asyncio.sleep(0.005)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        self.batcher.drain_pending()
        for conn in list(self._connections):
            self._teardown_connection(conn)
            with contextlib.suppress(OSError):
                conn.writer.close()
        if self.journal is not None:
            self.journal.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        log_event(_log, 20, "server.stopped")

    async def serve_forever(self, stop_event: Optional[asyncio.Event] = None) -> None:
        """Run until ``stop_event`` is set (or forever); then stop cleanly."""
        await self.start()
        try:
            if stop_event is None:
                assert self._server is not None
                await self._server.serve_forever()
            else:
                await stop_event.wait()
        finally:
            await self.stop()

    # -- journal replay ----------------------------------------------------
    async def _replay_journal(self) -> None:
        assert self.journal is not None
        pending, _completed = self.journal.pending_requests()
        if not pending:
            return
        loop = asyncio.get_running_loop()
        for payload in pending:
            try:
                request = SolveRequest.from_payload({**payload, "deadline_s": None})
            except InvalidProblemError as exc:
                log_event(_log, 30, "replay.skipped", why=str(exc))
                continue
            member = BatchMember(request, loop.create_future(), loop.time())
            result = await self._run_in_executor(
                compute_group,
                [(member.digest, request.implementation, request.spec())],
                self.store,
            )
            self.journal.append_complete(request.id, member.digest)
            self.replayed_ids.append(request.id)
            counter_inc("serve.replayed")
            log_event(_log, 20, "replay.completed",
                      id=request.id, cached=result[0].cached)

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(conn, line)
        except (ConnectionResetError, BrokenPipeError):
            log_event(_log, 20, "connection.reset")
        finally:
            self._teardown_connection(conn)
            self._connections.discard(conn)
            with contextlib.suppress(OSError):
                writer.close()

    def _teardown_connection(self, conn: _Connection) -> None:
        """Client gone: cancel queued work and the responder tasks."""
        for member in list(conn.members):
            if not member.future.done():
                member.future.cancel()
                counter_inc("serve.cancelled")
        for task in list(conn.tasks):
            task.cancel()
        conn.members.clear()
        conn.tasks.clear()

    def _route_fast(self, request: SolveRequest) -> SolveRequest:
        """Rewrite large dense solves onto the hierarchical path.

        Behind ``fast_threshold_m``: a ``"fused"`` request whose M
        reaches the threshold (and whose kernel/dimension the expansions
        support) is served by the ``"fast"`` implementation instead.
        The rewrite happens before the member (and its digest) exists,
        so batching, caching, journaling, and replay all see the routed
        implementation — a journal replay reproduces the routed result
        bit for bit.
        """
        t = self.config.fast_threshold_m
        if (
            t is None
            or request.implementation != "fused"
            or request.M < t
            or request.kernel != "gaussian"
            or request.K > 3  # repro.fast.engine.MAX_EXPANSION_DIMS
        ):
            return request
        counter_inc("serve.fast_routed")
        return replace(request, implementation="fast")

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        loop = asyncio.get_running_loop()
        try:
            doc = decode_message(line)
        except InvalidProblemError as exc:
            await self._write(conn, SolveResponse(
                id="?", status="invalid", error=str(exc)))
            return
        if doc.get("type") == "ping":
            async with conn.write_lock:
                conn.writer.write(encode_message({"type": "pong"}))
                await conn.writer.drain()
            return
        if doc.get("type") == "stats":
            reply = {"type": "stats", "snapshot": self.snapshot()}
            if doc.get("id") is not None:
                reply["id"] = doc["id"]
            async with conn.write_lock:
                conn.writer.write(encode_message(reply))
                await conn.writer.drain()
            return
        if doc.get("type") != "solve":
            await self._write(conn, SolveResponse(
                id=str(doc.get("id", "?")), status="invalid",
                error=f"unknown message type {doc.get('type')!r}"))
            return
        try:
            request = SolveRequest.from_payload(doc)
        except (InvalidProblemError, ReproError) as exc:
            await self._write(conn, SolveResponse(
                id=str(doc.get("id", "?")), status="invalid", error=str(exc)))
            return
        request = self._route_fast(request)
        # continue the client's trace (or root a new one) only when the
        # server is tracing or the client sent a context — the common
        # disarmed path does no id generation at all
        ctx: Optional[TraceContext] = None
        if active_tracer() is not None or request.trace is not None:
            parent = parse_traceparent(request.trace)
            ctx = parent.child() if parent is not None else new_context()
        with bind_context(ctx):
            try:
                with span("serve.admit", id=request.id):
                    self.admission.admit(request_id=request.id)
            except ReproError as exc:
                retry = getattr(exc, "retry_after_s", 0.0)
                await self._write(conn, SolveResponse(
                    id=request.id, status="overload", error=str(exc),
                    retry_after_s=retry,
                    trace=None if ctx is None else ctx.to_traceparent()))
                return
            counter_inc("serve.accepted")
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        member = BatchMember(
            request=request,
            future=loop.create_future(),
            enqueued_at=loop.time(),
            deadline_at=None if deadline_s is None else loop.time() + deadline_s,
            ctx=ctx,
        )
        conn.members.add(member)
        self._queue.put_nowait(member)
        task = asyncio.ensure_future(self._respond_when_done(conn, member))
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _respond_when_done(self, conn: _Connection, member: BatchMember) -> None:
        try:
            response = await member.future
        except asyncio.CancelledError:
            return
        finally:
            conn.members.discard(member)
        assert isinstance(response, SolveResponse)
        await self._write(conn, response)

    async def _write(self, conn: _Connection, response: SolveResponse) -> None:
        async with conn.write_lock:
            try:
                conn.writer.write(encode_message(response.to_payload()))
                await conn.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                log_event(_log, 20, "response.dropped", id=response.id)

    # -- dispatch ----------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            members = await self.batcher.collect(self._queue)
            self._busy = True
            try:
                await self._dispatch_batch(members)
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                log_event(_log, 40, "dispatch.failed",
                          error=type(exc).__name__,
                          ids=",".join(m.request.id for m in members))
                for m in members:
                    self._resolve(m, SolveResponse(
                        id=m.request.id, status="error", error=str(exc)))
            finally:
                self._busy = False

    async def _dispatch_batch(self, members: List[BatchMember]) -> None:
        loop = asyncio.get_running_loop()
        live: List[BatchMember] = []
        for m in members:
            if m.abandoned():
                self._release(m)
                continue
            if m.expired(loop.time()):
                counter_inc("serve.deadline_exceeded")
                self._resolve(m, SolveResponse(
                    id=m.request.id, status="deadline",
                    error="deadline expired while queued"))
                continue
            live.append(m)
        if not live:
            return
        if self.journal is not None:
            records = [{"type": "accept", "request": m.request.to_payload()}
                       for m in live]
            await self._run_in_executor(self.journal.append_batch, records)
        for group in group_by_key(live).values():
            await self._execute_group(group)
        if self.journal is not None:
            records = [{"type": "complete", "id": m.request.id, "digest": m.digest}
                       for m in live]
            await self._run_in_executor(self.journal.append_batch, records)

    async def _execute_group(self, members: List[BatchMember]) -> None:
        """One compatibility group -> one primary dispatch + retry ladder."""
        unique: Dict[str, Tuple[str, str, ProblemSpec]] = {}
        for m in members:
            if m.digest not in unique:
                unique[m.digest] = (m.digest, m.request.implementation, m.request.spec())
            else:
                counter_inc("serve.dedup_hits")
        order = list(unique.values())
        results: Dict[str, GroupResult] = {}

        # one shared dispatch serves every coalesced member: the span links
        # back to each member's trace so all N requests claim this work
        with span("serve.dispatch",
                  group_size=len(members), unique=len(order)) as dispatch_span:
            for m in members:
                if m.ctx is not None:
                    dispatch_span.add_link(m.ctx.trace_id, m.ctx.span_id)
            if self.breaker.allow():
                try:
                    computed = await self._run_in_executor(compute_group, order, self.store)
                    for r in computed:
                        self._verify(r)
                        results[r.digest] = r
                    self.breaker.record_success()
                except (ReproError, RuntimeError, ValueError) as exc:
                    self.breaker.record_failure()
                    log_event(_log, 30, "group.failed",
                              size=len(order), error=type(exc).__name__,
                              ids=",".join(m.request.id for m in members))
            # retry ladder: anything the group dispatch didn't produce cleanly
            for digest, implementation, spec in order:
                if digest in results:
                    continue
                results[digest] = await self._fallback(digest, implementation, spec)

        meter = active_energy_meter()
        charged: Dict[str, float] = {}
        batch_size = len(members)
        for m in members:
            r = results.get(m.digest)
            if r is None:  # pragma: no cover - the ladder always answers
                self._resolve(m, SolveResponse(
                    id=m.request.id, status="error", error="no result produced"))
                continue
            if r.cached:
                counter_inc("serve.cache_hits")
            if r.degraded:
                counter_inc("serve.degraded")
            energy_pj = None
            if meter is not None:
                energy = meter.estimate(m.request.implementation, m.request.spec())
                energy_pj = energy.total_pj
                # charge actual modelled joules once per freshly computed
                # digest; warm hits and dedup fan-out reuse spent energy
                if not r.cached and m.digest not in charged:
                    meter.charge(
                        energy,
                        exemplar=None if m.ctx is None else m.ctx.trace_id,
                    )
                charged[m.digest] = energy_pj
            with span("serve.resolve", id=m.request.id,
                      cache="warm" if r.cached else "cold") as resolve_span:
                if m.ctx is not None:
                    resolve_span.set(trace=m.ctx.trace_id)
                if energy_pj is not None:
                    resolve_span.set(energy_pj=energy_pj)
                self._resolve(m, SolveResponse.ok(
                    m.request.id, r.V, r.checksum,
                    degraded=r.degraded, cached=r.cached, batch_size=batch_size,
                    energy_pj=energy_pj,
                    trace=None if m.ctx is None else m.ctx.to_traceparent(),
                ))

    async def _fallback(
        self, digest: str, implementation: str, spec: ProblemSpec
    ) -> GroupResult:
        """Per-member retry on the primary engine, then the reference path."""
        if self.breaker.allow():
            try:
                computed = await self._run_in_executor(
                    compute_group, [(digest, implementation, spec)], self.store
                )
                r = computed[0]
                self._verify(r)
                self.breaker.record_success()
                return r
            except (ReproError, RuntimeError, ValueError) as exc:
                self.breaker.record_failure()
                log_event(_log, 30, "member.failed",
                          digest=digest[:12], error=type(exc).__name__)
        r = await self._run_in_executor(compute_reference, spec)
        return GroupResult(digest, r.V, r.checksum, degraded=True, cached=False)

    def _verify(self, r: GroupResult) -> None:
        """Detect payload corruption between the worker and the response."""
        if array_checksum(r.V) != r.checksum:
            counter_inc("serve.corruption_detected")
            log_event(_log, 30, "payload.corrupt", digest=r.digest[:12])
            raise ReproError(f"payload checksum mismatch for {r.digest[:12]}")

    def _release(self, member: BatchMember) -> None:
        """Return the member's admission slot exactly once."""
        if not member.released:
            member.released = True
            self.admission.release()

    def _resolve(self, member: BatchMember, response: SolveResponse) -> None:
        self._release(member)
        if member.future.done():
            # cancelled mid-execution (client gone): the slot is returned
            # above, the computed answer is dropped
            return
        loop = asyncio.get_event_loop()
        latency = loop.time() - member.enqueued_at
        registry = active_metrics()
        if registry is not None:
            registry.histogram("serve.latency_seconds", LATENCY_BUCKETS).observe(
                latency,
                exemplar=None if member.ctx is None else member.ctx.trace_id,
            )
        counter_inc("serve.responses")
        self.admission.observe_service_time(latency)
        if self.slo_monitor is not None:
            self.slo_monitor.observe(latency, ok=response.status == "ok")
        member.future.set_result(response)

    # -- telemetry ---------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``stats`` verb's JSON document (see :mod:`repro.obs.snapshot`).

        Built from the active metrics registry when one is armed (an empty
        registry otherwise, so the document shape never changes), plus the
        loop-side state only the server knows.
        """
        registry = active_metrics()
        if registry is None:
            registry = MetricsRegistry()
        slo = None
        if self.slo_monitor is not None:
            slo = self.slo_monitor.snapshot()
        server_state = {
            "mode": self.config.mode,
            "uptime_s": round(self._clock() - self._started_at, 3),
            "connections": len(self._connections),
            "queued": self._queue.qsize(),
            "inflight": self.admission.depth,
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trips_total,
            "admitted_total": self.admission.admitted_total,
            "shed_total": self.admission.shed_total,
            "slo_shed_total": self.admission.slo_shed_total,
            "energy_metering": active_energy_meter() is not None,
            "tracing": active_tracer() is not None,
        }
        return telemetry_snapshot(registry, slo=slo, server=server_state)

    async def _run_in_executor(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)
