"""Crash-safe write-ahead request journal.

Every accepted request is appended *before* its work is dispatched; every
answered request is appended again as a completion marker.  On restart the
server replays accepted-but-incomplete requests into the result store, so
a SIGKILL'd server loses no accepted work and never re-executes work that
already completed (mirroring :class:`repro.experiments.io.SweepJournal`
resume semantics, but binary and fsync'd because a serving journal is on
the hot path of every accept).

Record framing — built for torn writes::

    [4-byte LE payload length][4-byte LE CRC32 of payload][payload JSON]

A process killed mid-append leaves at worst one partial record at the
tail.  :meth:`RequestJournal.load` stops at the first frame that is short,
over-long, or CRC-mismatched, *tolerates* it (the journal is truncated
back to the last good frame so the next append starts clean), and logs a
structured ``journal.truncated`` event with the number of bytes dropped —
loudly recoverable, never silently wrong: the CRC makes a corrupt frame
indistinguishable from a torn one only in that both are discarded.

Group commit: :meth:`append_batch` writes any number of records with one
``flush`` + one ``fsync`` — the micro-batcher's amortization applies to
durability exactly as it does to dispatch.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.log import get_logger, log_event
from ..obs.metrics import counter_inc

__all__ = ["RequestJournal", "JournalRecord"]

_log = get_logger("serve.journal")

_HEADER = struct.Struct("<II")

#: journal record types
ACCEPT = "accept"
COMPLETE = "complete"

#: one decoded journal record (type tag + payload document)
JournalRecord = Dict[str, Any]


def _frame(payload: Dict[str, Any]) -> bytes:
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(data), zlib.crc32(data)) + data


class RequestJournal:
    """Length-prefixed, CRC-protected, fsync'd WAL of serving requests."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._fh: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def open(self) -> None:
        """Open for appending (creates parent directories on first use)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("ab")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RequestJournal":
        self.open()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- append ------------------------------------------------------------
    def append_batch(self, records: Sequence[JournalRecord]) -> None:
        """Durably append records with one flush + one fsync (group commit)."""
        if not records:
            return
        self.open()
        assert self._fh is not None
        for rec in records:
            self._fh.write(_frame(rec))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        counter_inc("serve.journal.records", len(records))
        counter_inc("serve.journal.fsyncs")

    def append_accept(self, request_payload: Dict[str, Any]) -> None:
        self.append_batch([{"type": ACCEPT, "request": request_payload}])

    def append_complete(self, request_id: str, digest: str) -> None:
        self.append_batch([{"type": COMPLETE, "id": request_id, "digest": digest}])

    # -- load --------------------------------------------------------------
    def load(self) -> List[JournalRecord]:
        """Every intact record, tolerating (and trimming) a torn tail."""
        if not self.path.exists():
            return []
        blob = self.path.read_bytes()
        records: List[JournalRecord] = []
        offset = 0
        good = 0
        why = ""
        while offset < len(blob):
            if offset + _HEADER.size > len(blob):
                why = "partial header"
                break
            length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(blob):
                why = "partial payload"
                break
            data = blob[start:end]
            if zlib.crc32(data) != crc:
                why = "CRC mismatch"
                break
            try:
                doc = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                why = "unparseable payload"
                break
            if not isinstance(doc, dict) or "type" not in doc:
                why = "payload is not a typed record"
                break
            records.append(doc)
            offset = end
            good = offset
        if good < len(blob):
            dropped = len(blob) - good
            log_event(
                _log, 30, "journal.truncated",
                path=str(self.path), dropped_bytes=dropped,
                records_kept=len(records), why=why,
            )
            counter_inc("serve.journal.truncations")
            # trim the torn tail so the next append starts on a clean frame
            was_open = self._fh is not None
            self.close()
            with self.path.open("r+b") as fh:
                fh.truncate(good)
            if was_open:
                self.open()
        return records

    def pending_requests(self) -> Tuple[List[Dict[str, Any]], List[str]]:
        """(accepted-but-incomplete request payloads, completed ids).

        The replay set preserves acceptance order; a request accepted more
        than once (e.g. journalled again during a previous replay) appears
        once.
        """
        completed: List[str] = []
        accepted: Dict[str, Dict[str, Any]] = {}
        for rec in self.load():
            if rec["type"] == ACCEPT:
                req = rec.get("request", {})
                rid = str(req.get("id", ""))
                if rid:
                    accepted.setdefault(rid, req)
            elif rec["type"] == COMPLETE:
                completed.append(str(rec.get("id", "")))
        done = set(completed)
        pending = [req for rid, req in accepted.items() if rid not in done]
        return pending, completed

    def clear(self) -> None:
        """Delete the journal (a fully drained server can start fresh)."""
        self.close()
        self.path.unlink(missing_ok=True)
