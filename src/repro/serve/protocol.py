"""Wire protocol: newline-delimited JSON requests and responses.

One connection carries any number of concurrently outstanding requests;
each message is a single JSON object on one line, matched by ``id``.  The
payload of a solve is the *specification* of the problem (the inputs are
derived deterministically from the spec, exactly as
:func:`repro.core.problem.generate` does for the library paths), so a
request is a few hundred bytes regardless of M, and the response carries
the potential vector ``V`` plus a SHA-256 checksum computed at the worker
the moment the result was produced — the serving layer re-verifies it
before answering, which is what turns injected payload corruption into a
detected (and recovered) fault instead of a wrong answer.

Floats travel as JSON numbers: every float32/float64 value is exactly
representable, so an encode/decode round trip is bit-identical.

Telemetry rides the same frames without changing them when it is off: a
tracing client attaches ``trace`` (a W3C-traceparent-style string, see
:mod:`repro.obs.context`) to a solve, the server continues that trace
and echoes its context plus a modelled ``energy_pj`` on the response —
all three fields are simply absent while telemetry is disarmed.  Besides
``solve`` and ``ping``, a ``{"type": "stats", "id": ...}`` request
returns ``{"type": "stats", "id": ..., "snapshot": {...}}`` with the
:data:`repro.obs.snapshot.SNAPSHOT_SCHEMA` document ``repro top``
renders.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.problem import ProblemSpec
from ..core.tiling import PAPER_TILING
from ..errors import InvalidProblemError
from ..store.functional import solve_digest

__all__ = [
    "PROTOCOL_VERSION",
    "SolveRequest",
    "SolveResponse",
    "encode_message",
    "decode_message",
    "request_digest",
    "array_checksum",
]

#: bump when a message field changes meaning
PROTOCOL_VERSION = "repro-serve/v1"

#: implementations the server is willing to dispatch
SERVABLE_IMPLEMENTATIONS = (
    "fused",
    "cublas-unfused",
    "cuda-unfused",
    "reference",
    "fast",
)


def array_checksum(V: np.ndarray) -> str:
    """SHA-256 of the raw little-endian bytes of ``V`` (order-sensitive)."""
    data = np.ascontiguousarray(V)
    return hashlib.sha256(data.tobytes()).hexdigest()


@dataclass(frozen=True)
class SolveRequest:
    """One kernel-summation request.

    ``deadline_s`` is the *budget* granted by the client (seconds from
    send); the server turns it into an absolute deadline at admission and
    checks it at every stage.  ``None`` means no deadline.
    """

    id: str
    M: int
    N: int
    K: int
    h: float = 1.0
    kernel: str = "gaussian"
    dtype: str = "float32"
    seed: int = 0
    implementation: str = "fused"
    deadline_s: Optional[float] = None
    #: W3C-traceparent-style trace context (``00-<32hex>-<16hex>-<2hex>``);
    #: None = the client is not tracing.  Never part of the content digest.
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        # an empty id means "let the client assign one before sending";
        # the server-side decode path (from_payload) rejects it
        if self.implementation not in SERVABLE_IMPLEMENTATIONS:
            raise InvalidProblemError(
                f"unservable implementation {self.implementation!r}; "
                f"available: {list(SERVABLE_IMPLEMENTATIONS)}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise InvalidProblemError("deadline_s must be positive (or None)")
        # validate shape/kernel parameters eagerly: a malformed request must
        # be rejected at the front door, not inside a batch
        self.spec()

    def spec(self) -> ProblemSpec:
        return ProblemSpec(
            M=self.M, N=self.N, K=self.K, h=self.h,
            kernel=self.kernel, dtype=self.dtype, seed=self.seed,
        )

    def with_id(self, new_id: str) -> "SolveRequest":
        return replace(self, id=new_id)

    def to_payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "type": "solve",
            "version": PROTOCOL_VERSION,
            "id": self.id,
            "M": self.M, "N": self.N, "K": self.K,
            "h": self.h,
            "kernel": self.kernel,
            "dtype": self.dtype,
            "seed": self.seed,
            "implementation": self.implementation,
            "deadline_s": self.deadline_s,
        }
        if self.trace is not None:
            doc["trace"] = self.trace
        return doc

    @classmethod
    def from_payload(cls, doc: Dict[str, Any]) -> "SolveRequest":
        if not str(doc.get("id", "")):
            raise InvalidProblemError("request id must be non-empty on the wire")
        try:
            return cls(
                id=str(doc["id"]),
                M=int(doc["M"]), N=int(doc["N"]), K=int(doc["K"]),
                h=float(doc.get("h", 1.0)),
                kernel=str(doc.get("kernel", "gaussian")),
                dtype=str(doc.get("dtype", "float32")),
                seed=int(doc.get("seed", 0)),
                implementation=str(doc.get("implementation", "fused")),
                deadline_s=(
                    None if doc.get("deadline_s") is None
                    else float(doc["deadline_s"])
                ),
                trace=(None if doc.get("trace") is None else str(doc["trace"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidProblemError(f"malformed solve request: {exc}") from exc


@dataclass(frozen=True)
class SolveResponse:
    """One answer (or typed rejection) for one request id.

    ``status`` is ``"ok"`` for an answered request; otherwise the name of
    the rejection class (``"overload"``, ``"deadline"``, ``"error"``) —
    the client maps these back onto the :mod:`repro.errors` taxonomy.
    """

    id: str
    status: str
    V: Optional[List[float]] = None
    dtype: str = "float32"
    checksum: Optional[str] = None
    degraded: bool = False
    cached: bool = False
    batch_size: int = 1
    error: Optional[str] = None
    retry_after_s: Optional[float] = None
    #: modelled energy of this request's solve (picojoules); None while
    #: energy metering is disarmed server-side
    energy_pj: Optional[float] = None
    #: the server-side trace context that handled this request (traceparent
    #: form); None while telemetry is disarmed
    trace: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "type": "result",
            "version": PROTOCOL_VERSION,
            "id": self.id,
            "status": self.status,
            "dtype": self.dtype,
            "degraded": self.degraded,
            "cached": self.cached,
            "batch_size": self.batch_size,
        }
        if self.V is not None:
            doc["V"] = self.V
            doc["checksum"] = self.checksum
        if self.error is not None:
            doc["error"] = self.error
        if self.retry_after_s is not None:
            doc["retry_after_s"] = self.retry_after_s
        if self.energy_pj is not None:
            doc["energy_pj"] = self.energy_pj
        if self.trace is not None:
            doc["trace"] = self.trace
        return doc

    @classmethod
    def from_payload(cls, doc: Dict[str, Any]) -> "SolveResponse":
        return cls(
            id=str(doc["id"]),
            status=str(doc["status"]),
            V=doc.get("V"),
            dtype=str(doc.get("dtype", "float32")),
            checksum=doc.get("checksum"),
            degraded=bool(doc.get("degraded", False)),
            cached=bool(doc.get("cached", False)),
            batch_size=int(doc.get("batch_size", 1)),
            error=doc.get("error"),
            retry_after_s=doc.get("retry_after_s"),
            energy_pj=doc.get("energy_pj"),
            trace=doc.get("trace"),
        )

    def array(self) -> np.ndarray:
        """The potential vector as a numpy array in the response dtype."""
        if self.V is None:
            raise ValueError(f"response {self.id!r} carries no result (status={self.status})")
        return np.asarray(self.V, dtype=np.dtype(self.dtype))

    @classmethod
    def ok(
        cls,
        request_id: str,
        V: np.ndarray,
        checksum: str,
        degraded: bool = False,
        cached: bool = False,
        batch_size: int = 1,
        energy_pj: Optional[float] = None,
        trace: Optional[str] = None,
    ) -> "SolveResponse":
        return cls(
            id=request_id,
            status="ok",
            V=[float(v) for v in V],
            dtype=str(V.dtype),
            checksum=checksum,
            degraded=degraded,
            cached=cached,
            batch_size=batch_size,
            energy_pj=energy_pj,
            trace=trace,
        )


def request_digest(request: SolveRequest) -> str:
    """Content address of a request's result in the persistent store.

    Identical to :func:`repro.store.functional.solve_digest` for the same
    (implementation, spec) — a result computed by the service is a warm
    hit for the library paths and vice versa.
    """
    return solve_digest(request.implementation, request.spec(), PAPER_TILING)


def encode_message(doc: Dict[str, Any]) -> bytes:
    """One message -> one newline-terminated JSON line."""
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one line; raises :class:`InvalidProblemError` on garbage."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidProblemError(f"undecodable message: {exc}") from exc
    if not isinstance(doc, dict) or "type" not in doc:
        raise InvalidProblemError("message must be a JSON object with a 'type'")
    return doc
