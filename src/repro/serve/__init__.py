"""Chaos-hardened async serving layer for kernel summation.

The production front door the ROADMAP asks for: an asyncio service that
accepts solve requests over newline-JSON streams, micro-batches compatible
requests into single dispatches (request-level horizontal fusion — the
serving-side analogue of the paper's kernel fusion), answers warm requests
straight from the content-addressed :mod:`repro.store`, and — the headline
property — stays *correct* under injected failure:

* **admission control** — bounded queues; overload is shed with a typed
  :class:`~repro.errors.ServiceOverloadError` carrying a retry-after hint
  instead of letting latency collapse for everyone;
* **deadlines** — every request carries an end-to-end budget that is
  checked at admission, at dispatch, and after execution; expired or
  abandoned work is actually torn down, not silently computed;
* **circuit breaking** — consecutive primary-engine failures trip a
  per-backend breaker; tripped traffic degrades to the trusted reference
  path under the existing :class:`~repro.errors.DegradedResultWarning`
  convention, and a half-open probe closes the breaker on recovery;
* **crash-safe journaling** — accepted requests hit a length-prefixed,
  CRC-protected, fsync'd write-ahead journal before execution; a killed
  server replays in-flight work on restart without double-executing
  anything that completed (mirroring ``SweepJournal`` resume semantics);
* **chaos harness** — :mod:`repro.serve.chaos` injects worker crashes,
  latency spikes, and payload corruption in-process with
  :mod:`repro.faults`-style seeding; ``tests/serve`` asserts zero wrong
  answers under every scenario.

See docs/SERVING.md for the architecture and the failure matrix.
"""

from __future__ import annotations

from .admission import AdmissionController, CircuitBreaker
from .batcher import BatchMember, MicroBatcher, batch_key
from .chaos import ChaosClock, ChaosMonkey, ChaosSpec, active_chaos, chaos_injection
from .client import ServeClient, SolveResult
from .journal import RequestJournal
from .protocol import (
    PROTOCOL_VERSION,
    SolveRequest,
    SolveResponse,
    decode_message,
    encode_message,
    request_digest,
)
from .server import KernelServer, ServerConfig

__all__ = [
    "PROTOCOL_VERSION",
    "SolveRequest",
    "SolveResponse",
    "encode_message",
    "decode_message",
    "request_digest",
    "RequestJournal",
    "AdmissionController",
    "CircuitBreaker",
    "MicroBatcher",
    "BatchMember",
    "batch_key",
    "KernelServer",
    "ServerConfig",
    "ServeClient",
    "SolveResult",
    "ChaosSpec",
    "ChaosMonkey",
    "ChaosClock",
    "chaos_injection",
    "active_chaos",
]
