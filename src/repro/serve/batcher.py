"""Micro-batching: request-level horizontal fusion.

The paper fuses kernels so many small device passes become one; a serving
layer fuses *requests* so many small dispatches become one (Li et al.,
"Automatic Horizontal Fusion for GPU Kernels" is the device-side analogue
of the same idea).  The batcher

* collects up to ``max_batch_size`` queued requests inside a
  ``max_delay_s`` window (the first request never waits longer than the
  window; an idle service adds zero latency because collection starts only
  when a request arrives);
* partitions them into compatibility groups — same implementation,
  kernel, dtype, and (N, K) tiling class — so each group lowers to one
  dispatch of the PR-3 batched numpy engine;
* deduplicates members within a group by content digest: identical
  requests (same full spec) are computed once and fanned out to every
  waiter, and warm digests are answered straight from the persistent
  :class:`~repro.store.ResultStore` without touching the executor.

One dispatch also means one write-ahead-journal group commit and one
executor round trip for the whole batch — the durability and scheduling
overheads amortize exactly like the kernel-launch overhead the paper's
fusion removes.

:func:`compute_group` is the sync half that runs inside the worker
executor; it is where the chaos hooks (crash / latency / corruption)
live, and where each result is checksummed *at the moment of production*
so later corruption is detectable.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.problem import ProblemSpec
from ..errors import DegradedResultWarning
from ..obs.context import TraceContext
from ..obs.metrics import active_metrics, counter_inc
from ..serve.chaos import active_chaos
from ..store.functional import cached_solve
from .protocol import SolveRequest, array_checksum, request_digest

__all__ = [
    "BatchMember",
    "MicroBatcher",
    "batch_key",
    "GroupResult",
    "compute_group",
    "compute_reference",
]

#: histogram edges for batch sizes
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(eq=False)  # identity semantics: members live in per-connection sets
class BatchMember:
    """One admitted request waiting in the dispatch queue."""

    request: SolveRequest
    future: "asyncio.Future[object]"
    enqueued_at: float
    #: absolute event-loop deadline (None = no deadline)
    deadline_at: Optional[float] = None
    digest: str = field(default="")
    #: admission slot returned already (guards double release when a member
    #: is both resolved and swept up by an error path)
    released: bool = field(default=False)
    #: server-side trace context (None while telemetry is disarmed); the
    #: dispatch span links back to every member's context for fan-in
    ctx: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = request_digest(self.request)

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at

    def abandoned(self) -> bool:
        """Client gone (future cancelled) — tear the work down."""
        return self.future.cancelled() or self.future.done()


def batch_key(request: SolveRequest) -> Tuple[str, str, str, int, int]:
    """Compatibility class: one group -> one batched-engine dispatch."""
    return (request.implementation, request.kernel, request.dtype, request.N, request.K)


class MicroBatcher:
    """Collects queue entries into batches without ever losing one.

    The pending ``get`` is a persistent task that survives a window
    timeout (``asyncio.wait`` leaves it running rather than cancelling
    it), so a request can never fall between batches — the classic
    wait_for-cancellation lost-item race is designed out.
    """

    def __init__(self, max_batch_size: int = 16, max_delay_s: float = 0.002) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_delay_s = max_delay_s
        self._pending_get: Optional["asyncio.Task[BatchMember]"] = None

    async def _next(self, queue: "asyncio.Queue[BatchMember]") -> "asyncio.Task[BatchMember]":
        if self._pending_get is None:
            self._pending_get = asyncio.ensure_future(queue.get())
        return self._pending_get

    async def collect(self, queue: "asyncio.Queue[BatchMember]") -> List[BatchMember]:
        """Wait for the first member, then fill the window."""
        loop = asyncio.get_running_loop()
        first_task = await self._next(queue)
        first = await first_task
        self._pending_get = None
        members = [first]
        if self.max_batch_size == 1 or self.max_delay_s == 0.0:
            return members
        window_ends = loop.time() + self.max_delay_s
        while len(members) < self.max_batch_size:
            remaining = window_ends - loop.time()
            if remaining <= 0:
                break
            task = await self._next(queue)
            done, _ = await asyncio.wait({task}, timeout=remaining)
            if not done:
                break  # the get stays pending and seeds the next batch
            members.append(task.result())
            self._pending_get = None
        registry = active_metrics()
        if registry is not None:
            registry.histogram("serve.batch_size", BATCH_SIZE_BUCKETS).observe(len(members))
        counter_inc("serve.batches")
        counter_inc("serve.batched_requests", len(members))
        return members

    def drain_pending(self) -> None:
        """Cancel the carried-over get (server shutdown only)."""
        if self._pending_get is not None:
            self._pending_get.cancel()
            self._pending_get = None


def group_by_key(members: List[BatchMember]) -> Dict[Tuple[str, str, str, int, int], List[BatchMember]]:
    """Partition one collected batch into compatibility groups."""
    groups: Dict[Tuple[str, str, str, int, int], List[BatchMember]] = {}
    for m in members:
        groups.setdefault(batch_key(m.request), []).append(m)
    return groups


@dataclass
class GroupResult:
    """Outcome of one unique digest inside a group dispatch."""

    digest: str
    V: np.ndarray
    checksum: str
    degraded: bool = False
    cached: bool = False


def _solve_one(
    implementation: str, spec: ProblemSpec, store: Optional[object]
) -> Tuple[np.ndarray, bool, bool]:
    """(V, degraded?, cached?) for one unique spec, through the store."""
    hits_before = store.stats.hits if store is not None else 0
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DegradedResultWarning)
        V = cached_solve(implementation, spec, store=store)
    degraded = any(issubclass(w.category, DegradedResultWarning) for w in caught)
    cached = store is not None and store.stats.hits > hits_before
    return V, degraded, cached


def compute_group(
    unique: List[Tuple[str, str, ProblemSpec]],
    store: Optional[object] = None,
) -> List[GroupResult]:
    """Sync executor half: compute each unique (digest, implementation, spec).

    Chaos hooks fire here, in worker context: a crash aborts the whole
    group (exactly how a died pool worker takes its batch with it — the
    server isolates and retries), a latency spike stalls the worker
    thread (never the event loop), and corruption strikes *after* the
    checksum was taken, so the server's verify step catches it.
    """
    chaos = active_chaos()
    out: List[GroupResult] = []
    for digest, implementation, spec in unique:
        if chaos is not None:
            chaos.maybe_crash(where=f"group[{digest[:8]}]")
            delay = chaos.delay_s(where=f"group[{digest[:8]}]")
            if delay > 0:
                time.sleep(delay)  # worker thread, not the event loop
        V, degraded, cached = _solve_one(implementation, spec, store)
        checksum = array_checksum(V)
        if chaos is not None:
            V = chaos.maybe_corrupt(V, where=f"group[{digest[:8]}]")
        out.append(GroupResult(digest, V, checksum, degraded=degraded, cached=cached))
    return out


def compute_reference(spec: ProblemSpec) -> GroupResult:
    """Trusted last-resort path: the float64 reference, no chaos hooks.

    Used when the primary engine's breaker is open or a computed payload
    failed its checksum — the serving analogue of the ABFT fallback, and
    like it, always flagged :class:`DegradedResultWarning` downstream.
    """
    V, _, _ = _solve_one("reference", spec, None)
    return GroupResult("", V, array_checksum(V), degraded=True, cached=False)
