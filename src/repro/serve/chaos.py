"""In-process chaos injection for the serving layer.

The same discipline as :mod:`repro.faults`: one seeded generator, a
process-wide armed context, hooks that cost a single ``is None`` test when
disarmed.  Where the fault injector corrupts values inside the simulated
kernel data path, the chaos monkey attacks the *service* around it:

* ``crash``   — the worker raises :class:`~repro.errors.WorkerCrashError`
  mid-task (a died process-pool worker / OOM-killed executor thread);
* ``latency`` — the worker stalls for ``latency_s`` before answering (a
  thermal-throttled device, a page-cache miss storm);
* ``corrupt`` — one element of the computed potential vector is scaled
  after the worker checksummed it (a torn DMA / NIC bit-flip between the
  worker and the response path).

Determinism: every decision comes from one ``numpy`` generator seeded by
``ChaosSpec.seed`` and advanced only by hook crossings, so a chaos test
failure replays exactly from (spec, request order).

:class:`ChaosClock` is the controllable time source the circuit-breaker
and deadline tests drive: ``advance()`` moves time without sleeping, so
open -> half-open -> closed transitions are tested in microseconds.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..errors import FaultConfigError, WorkerCrashError
from ..obs.log import get_logger, log_event
from ..obs.metrics import counter_inc

__all__ = [
    "ChaosSpec",
    "ChaosMonkey",
    "ChaosClock",
    "chaos_injection",
    "active_chaos",
]

_log = get_logger("serve.chaos")


@dataclass(frozen=True)
class ChaosSpec:
    """Rates (per hook crossing) and parameters of one chaos scenario."""

    crash_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.05
    corrupt_rate: float = 0.0
    corrupt_scale: float = 8.0
    seed: int = 0
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "latency_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultConfigError(f"{name} must lie in [0, 1], got {rate}")
        if self.latency_s < 0:
            raise FaultConfigError("latency_s must be non-negative")
        if self.corrupt_scale == 1.0:
            raise FaultConfigError("corrupt_scale=1 is a no-op corruption")
        if self.max_events is not None and self.max_events < 1:
            raise FaultConfigError("max_events must be positive (or None)")


class ChaosMonkey:
    """Applies a :class:`ChaosSpec` at the serving layer's chaos hooks."""

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self.rng = np.random.default_rng(spec.seed)
        self.crashes = 0
        self.delays = 0
        self.corruptions = 0

    @property
    def events(self) -> int:
        return self.crashes + self.delays + self.corruptions

    def _fires(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if self.spec.max_events is not None and self.events >= self.spec.max_events:
            return False
        if rate >= 1.0:
            return True
        return bool(self.rng.random() < rate)

    def maybe_crash(self, where: str = "") -> None:
        """Worker entry hook: raise :class:`WorkerCrashError` or pass."""
        if self._fires(self.spec.crash_rate):
            self.crashes += 1
            counter_inc("serve.chaos.crashes")
            log_event(_log, 30, "chaos.crash", where=where)
            raise WorkerCrashError(f"chaos: worker crashed at {where or '?'}")

    def delay_s(self, where: str = "") -> float:
        """Latency hook: seconds the worker should stall (0 = no spike)."""
        if self._fires(self.spec.latency_rate):
            self.delays += 1
            counter_inc("serve.chaos.delays")
            log_event(_log, 20, "chaos.delay", where=where, seconds=self.spec.latency_s)
            return self.spec.latency_s
        return 0.0

    def maybe_corrupt(self, V: np.ndarray, where: str = "") -> np.ndarray:
        """Post-checksum payload hook: return a corrupted copy, or V as-is."""
        if not self._fires(self.spec.corrupt_rate) or V.size == 0:
            return V
        self.corruptions += 1
        counter_inc("serve.chaos.corruptions")
        out = np.array(V, copy=True)
        idx = int(self.rng.integers(out.size))
        old = out.flat[idx]
        out.flat[idx] = out.dtype.type(old * self.spec.corrupt_scale + 1.0)
        log_event(_log, 30, "chaos.corrupt", where=where, index=idx)
        return out


#: process-wide armed monkey (None = chaos disabled)
_ACTIVE: Optional[ChaosMonkey] = None


def active_chaos() -> Optional[ChaosMonkey]:
    """The armed chaos monkey, or ``None`` — the single check every hook makes."""
    return _ACTIVE


@contextmanager
def chaos_injection(spec: ChaosSpec | ChaosMonkey) -> Iterator[ChaosMonkey]:
    """Arm chaos process-wide for a ``with`` block; restores the previous."""
    global _ACTIVE
    monkey = spec if isinstance(spec, ChaosMonkey) else ChaosMonkey(spec)
    previous = _ACTIVE
    _ACTIVE = monkey
    try:
        yield monkey
    finally:
        _ACTIVE = previous


class ChaosClock:
    """Deterministic, manually advanced monotonic clock for tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds
        return self._now
