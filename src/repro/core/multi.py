"""Multi-weight (multiple right-hand-side) kernel summation.

A common production pattern the paper's single-vector formulation leaves on
the table: evaluating the *same* kernel matrix against ``R`` weight vectors
at once (kernel regression with several responses, KDE with leave-one-out
folds, per-class Parzen scores...).  The fused structure extends directly —
the intra-thread reduction against one weight slice becomes a rank-``R``
microtile-by-weights product, and each CTA atomically accumulates a
``128 x R`` partial block — and the arithmetic intensity *improves*, since
the kernel matrix is evaluated once instead of R times.

``V = multi_kernel_summation(A, B, W)`` with ``W`` of shape ``(N, R)``
returns ``V`` of shape ``(M, R)``; a 1-D ``W`` degrades to the standard
single-vector path so callers can be shape-generic.
"""

from __future__ import annotations

import numpy as np

from .gemm import pad_to_tiles
from .kernels import get_kernel
from .tiling import PAPER_TILING, TilingConfig

__all__ = ["multi_kernel_summation", "multi_reference"]


def _validate(A: np.ndarray, B: np.ndarray, W: np.ndarray) -> tuple[int, int, int, int]:
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("A and B must be 2-D")
    M, K = A.shape
    K2, N = B.shape
    if K != K2:
        raise ValueError(f"A is {A.shape} but B is {B.shape}: K dimensions disagree")
    if W.ndim == 1:
        W = W[:, None]
    if W.ndim != 2 or W.shape[0] != N:
        raise ValueError(f"W must be (N,) or (N, R) with N={N}, got {W.shape}")
    if not (A.dtype == B.dtype == W.dtype):
        raise ValueError("A, B, W must share one dtype")
    if A.dtype not in (np.float32, np.float64):
        raise ValueError("dtype must be float32 or float64")
    return M, N, K, W.shape[1]


def multi_reference(
    A: np.ndarray, B: np.ndarray, W: np.ndarray, h: float = 1.0, kernel: str = "gaussian"
) -> np.ndarray:
    """Brute-force float64 reference for the multi-weight problem."""
    M, N, K, R = _validate(A, B, np.atleast_2d(W.T).T if W.ndim == 1 else W)
    Wm = W[:, None] if W.ndim == 1 else W
    kf = get_kernel(kernel)
    A64, B64 = A.astype(np.float64), B.astype(np.float64)
    diff = A64[:, :, None] - B64[None, :, :]
    sq = np.einsum("mkn,mkn->mn", diff, diff)
    V = kf.fn(sq, h) @ Wm.astype(np.float64)
    out = V.astype(A.dtype)
    return out[:, 0] if W.ndim == 1 else out


def multi_kernel_summation(
    A: np.ndarray,
    B: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    kernel: str = "gaussian",
    tiling: TilingConfig = PAPER_TILING,
) -> np.ndarray:
    """Fused kernel summation against ``R`` weight vectors at once.

    Identical CTA structure to :class:`~repro.core.fused.
    FusedKernelSummation`; the per-CTA tail computes ``Kblk @ W_slice``
    (a 128 x R panel product) and accumulates it atomically.
    """
    if h <= 0:
        raise ValueError("bandwidth h must be positive")
    squeeze = W.ndim == 1
    Wm = W[:, None] if squeeze else W
    M, N, K, R = _validate(A, B, Wm)
    if R == 0:
        raise ValueError("W must contain at least one weight column")
    kf = get_kernel(kernel)
    dt = A.dtype
    t = tiling

    Ap = pad_to_tiles(np.ascontiguousarray(A), t.mc, t.kc)
    Bp = pad_to_tiles(np.ascontiguousarray(B), t.kc, t.nc)
    Wp = np.pad(np.ascontiguousarray(Wm), ((0, (-N) % t.nc), (0, 0)))
    na = np.pad(
        np.einsum("ik,ik->i", A.astype(np.float64), A.astype(np.float64)).astype(dt),
        (0, (-M) % t.mc),
    )
    nb = np.pad(
        np.einsum("kj,kj->j", B.astype(np.float64), B.astype(np.float64)).astype(dt),
        (0, (-N) % t.nc),
    )
    Mp, Kp = Ap.shape
    _, Np = Bp.shape
    grid_x, grid_y = Np // t.nc, Mp // t.mc
    k_iters = Kp // t.kc

    V = np.zeros((Mp, R), dtype=dt)
    for by in range(grid_y):
        r0, r1 = by * t.mc, (by + 1) * t.mc
        for bx in range(grid_x):
            c0, c1 = bx * t.nc, (bx + 1) * t.nc
            subC = np.zeros((t.mc, t.nc), dtype=dt)
            for ki in range(k_iters):
                k0, k1 = ki * t.kc, (ki + 1) * t.kc
                subC += Ap[r0:r1, k0:k1] @ Bp[k0:k1, c0:c1]
            sq = na[r0:r1, None] + nb[None, c0:c1] - dt.type(2.0) * subC
            Kblk = kf.evaluate(sq, h)
            V[r0:r1] += Kblk @ Wp[c0:c1]  # rank-R tail, atomics on hardware

    out = V[:M]
    return out[:, 0] if squeeze else out
