"""Unfused kernel-summation pipelines (the paper's baselines).

Both baselines run Algorithm 1 as four separate kernels with the M x N
intermediate matrix materialized between them — on the GPU that matrix
round-trips through DRAM, which is precisely the traffic fusion removes:

* **cuBLAS-Unfused** — the GEMM (and GEMV) are the vendor library; here the
  stand-in is NumPy's BLAS-backed ``@``, which plays the same role of "a
  black-box, maximally tuned GEMM you cannot fuse into";
* **CUDA-Unfused** — the GEMM is our own :class:`~repro.core.gemm.TiledGemm`
  (the paper uses this pair to isolate the benefit of fusion from the
  quality of the GEMM).

Each pipeline optionally records the intermediate arrays it allocated
(``keep_intermediates``) so tests can assert the staging behaviour, and
reports the intermediate bytes it moved, which the performance layer
cross-checks against its analytical traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..obs.metrics import counter_inc
from ..obs.tracer import span
from .gemm import TiledGemm
from .kernels import get_kernel
from .problem import ProblemData
from .tiling import PAPER_TILING, TilingConfig

__all__ = ["PipelineResult", "UnfusedPipeline", "cublas_unfused", "cuda_unfused"]


@dataclass
class PipelineResult:
    """Output of an unfused run plus its staging footprint."""

    V: np.ndarray
    #: bytes written to + read back from the intermediate M x N matrices
    intermediate_bytes: int
    intermediates: dict = field(default_factory=dict)


class UnfusedPipeline:
    """Four-kernel Algorithm 1: norms, GEMM, kernel evaluation, GEMV."""

    def __init__(
        self,
        gemm: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        name: str = "cuBLAS-Unfused",
    ) -> None:
        #: ``None`` means the vendor-BLAS stand-in (NumPy's ``@``)
        self.gemm = gemm
        self.name = name

    def __call__(self, data: ProblemData, keep_intermediates: bool = False) -> PipelineResult:
        spec = data.spec
        dt = spec.np_dtype
        kf = get_kernel(spec.kernel)
        elem = dt.itemsize
        mn_bytes = spec.M * spec.N * elem

        with span(
            "unfused.run", pipeline=self.name, M=spec.M, N=spec.N, K=spec.K
        ):
            # Kernel 1: squared norms of both point sets.
            with span("unfused.norms"):
                norm_a = data.source_norms
                norm_b = data.target_norms

            # Kernel 2: GEMM; output written back to "main memory".
            with span("unfused.gemm"):
                if self.gemm is None:
                    C = (data.A @ data.B).astype(dt, copy=False)
                else:
                    C = self.gemm(data.A, data.B)
                    if C.dtype != dt or C.shape != (spec.M, spec.N):
                        raise ValueError("gemm callable returned a mismatched array")

            # Kernel 3: distance assembly + kernel evaluation; reads C, writes K.
            with span("unfused.kernel_eval"):
                sq = norm_a[:, None] + norm_b[None, :] - dt.type(2.0) * C
                Kmat = kf.evaluate(sq, spec.h)

            # Kernel 4: GEMV against the weights.
            with span("unfused.gemv"):
                V = (Kmat @ data.W).astype(dt, copy=False)

        # C is written once and read once; K likewise: 4 * M * N elements.
        counter_inc("core.unfused.intermediate_bytes", 4 * mn_bytes)
        result = PipelineResult(V=V, intermediate_bytes=4 * mn_bytes)
        if keep_intermediates:
            result.intermediates = {"C": C, "K": Kmat, "norm_a": norm_a, "norm_b": norm_b}
        return result


def cublas_unfused(data: ProblemData, keep_intermediates: bool = False) -> PipelineResult:
    """Algorithm 1 with the vendor-BLAS stand-in GEMM."""
    return UnfusedPipeline(None, "cuBLAS-Unfused")(data, keep_intermediates)


def cuda_unfused(
    data: ProblemData,
    tiling: TilingConfig = PAPER_TILING,
    keep_intermediates: bool = False,
    engine: str = "auto",
) -> PipelineResult:
    """Algorithm 1 with our own tiled CUDA-C-style GEMM.

    ``engine`` selects the GEMM execution path (``auto``/``batched``/
    ``loop``, bit-identical — see :mod:`repro.core.gemm`).
    """
    return UnfusedPipeline(TiledGemm(tiling, engine=engine), "CUDA-Unfused")(data, keep_intermediates)
