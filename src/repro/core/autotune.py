"""Blocking autotuner.

Section III-A reaches the 128x128 / 16x16 / 8x8 design point by manually
walking the resource trade-offs ("Factors like GPU limits, trade-offs
between high SM occupancy and less data locality, inter-influence between
matrix size and matrix partition are taken into consideration").  This
module automates exactly that walk: it enumerates every launchable
:class:`~repro.core.tiling.TilingConfig` in a candidate space, evaluates
each with the calibrated performance model, and ranks them.

The search is a model-driven autotuner in the classic GEMM-tuning sense —
nothing is executed; candidates that violate hardware launch rules
(occupancy, shared-memory caps, register ceilings) are rejected by
construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

from ..gpu.device import GTX970, DeviceSpec
from .problem import ProblemSpec
from .tiling import PAPER_TILING, TilingConfig

__all__ = [
    "TUNE_RESULT_SCHEMA",
    "TuneResult",
    "candidate_tilings",
    "filter_conflict_free",
    "autotune",
    "rank_tilings",
]

#: Version tag of :meth:`TuneResult.to_json` — bump on layout changes.
TUNE_RESULT_SCHEMA = "repro-tune-result/v1"


@dataclass(frozen=True)
class TuneResult:
    """One evaluated candidate.

    ``saturation`` (when present) is the slot-level issue model's payload
    (:meth:`repro.perf.slots.SaturationReport.to_payload`) and
    ``limiter_detail`` breaks the single ``limiter`` string into the
    occupancy limiter, the slot-model bottleneck engine, and the
    per-phase bottlenecks — everything ``repro autotune --explain``
    prints.  Both default to ``None`` for legacy construction sites.
    """

    tiling: TilingConfig
    seconds: float
    blocks_per_sm: int
    limiter: str
    reduction: str = "atomic"
    saturation: Optional[Mapping[str, Any]] = None
    limiter_detail: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("modelled time must be positive")
        if self.reduction not in ("atomic", "two-pass"):
            raise ValueError(f"unknown reduction strategy {self.reduction!r}")

    def to_json(self) -> dict:
        """Stable, versioned, machine-readable form (``repro autotune --json``)."""
        t = self.tiling
        return {
            "schema": TUNE_RESULT_SCHEMA,
            "tiling": {
                "mc": t.mc,
                "nc": t.nc,
                "kc": t.kc,
                "block_dim_x": t.block_dim_x,
                "block_dim_y": t.block_dim_y,
                "micro_m": t.micro_m,
                "micro_n": t.micro_n,
                "double_buffered": t.double_buffered,
            },
            "reduction": self.reduction,
            "seconds": self.seconds,
            "blocks_per_sm": self.blocks_per_sm,
            "limiter": self.limiter,
            "saturation": dict(self.saturation) if self.saturation else None,
            "limiter_detail": (
                dict(self.limiter_detail) if self.limiter_detail else None
            ),
        }


def candidate_tilings(
    device: DeviceSpec = GTX970,
    mc_values: Sequence[int] = (32, 64, 128, 256),
    nc_values: Sequence[int] = (32, 64, 128, 256),
    kc_values: Sequence[int] = (4, 8, 16),
    include_single_buffered: bool = False,
) -> List[TilingConfig]:
    """Every launchable configuration in the candidate space.

    Thread grids are derived from the tile shape so each thread owns an
    8x8 microtile where possible, falling back to 4x4 for small tiles;
    candidates that fail construction-time validation or cannot launch on
    ``device`` are dropped.
    """
    out: List[TilingConfig] = []
    buffer_opts = (True, False) if include_single_buffered else (True,)
    for mc in mc_values:
        for nc in nc_values:
            for kc in kc_values:
                for micro in (8, 4):
                    bx, by = nc // micro, mc // micro
                    if bx < 1 or by < 1 or bx * by > device.max_threads_per_block:
                        continue
                    if bx * by < 32:
                        continue  # sub-warp blocks are never sensible
                    for db in buffer_opts:
                        try:
                            t = TilingConfig(
                                mc=mc, nc=nc, kc=kc,
                                block_dim_x=bx, block_dim_y=by,
                                double_buffered=db,
                            )
                            t.occupancy_on(device)  # must be launchable
                        except ValueError:
                            continue
                        out.append(t)
                    break  # prefer the 8x8 grid; don't also add 4x4 duplicates
    # de-duplicate (identical configs can arise from the micro fallback)
    seen, unique = set(), []
    for t in out:
        key = (t.mc, t.nc, t.kc, t.block_dim_x, t.block_dim_y, t.double_buffered)
        if key not in seen:
            seen.add(key)
            unique.append(t)
    return unique


def filter_conflict_free(
    candidates: Sequence[TilingConfig], layout: str = "optimized"
) -> List[TilingConfig]:
    """Drop candidates whose staging mapping is *provably* bank-conflicting.

    Each candidate is handed to the static bank certifier
    (:func:`repro.analysis.banks.certify_tiling`): a certificate with a
    non-zero replay factor disproves the Fig.-5 conflict-free claim for
    that mapping, so the candidate is rejected before any simulation is
    spent on it.  Candidates the mapping does not describe (non-128x128
    tiles, non-16x16 blocks, inexpressible ``kc``) yield no certificate
    and are kept — absence of a proof is not a disproof.
    """
    from ..analysis.banks import certify_tiling  # deferred: avoid import cycle

    keep: List[TilingConfig] = []
    for t in candidates:
        cert = certify_tiling(t, layout)
        if cert is None or cert.conflict_free:
            keep.append(t)
    return keep


def rank_tilings(
    spec: ProblemSpec,
    candidates: Sequence[TilingConfig] | None = None,
    device: DeviceSpec = GTX970,
    require_conflict_free: bool = False,
    layout: str = "optimized",
    top_k: int | None = None,
) -> List[TuneResult]:
    """Model every candidate's fused-kernel runtime; best first.

    With ``require_conflict_free=True`` candidates are first screened by
    the static bank certifier (see :func:`filter_conflict_free`) so
    provably conflicting mappings never reach the performance model.

    ``top_k`` keeps only the best ``k`` results via a streaming min-heap
    instead of materialising and sorting the full list — `heapq.nsmallest`
    is stable, so ``rank_tilings(..., top_k=k) == rank_tilings(...)[:k]``
    element for element.  :func:`autotune` and the beam-search driver use
    this path; every candidate is still *evaluated* exactly once.
    """
    from ..perf.pipeline import model_run  # deferred: avoid import cycle

    if candidates is None:
        candidates = candidate_tilings(device)
    if require_conflict_free:
        candidates = filter_conflict_free(candidates, layout)
    if not candidates:
        raise ValueError("no launchable candidates to rank")
    if top_k is not None and top_k <= 0:
        raise ValueError("top_k must be positive")

    def evaluate():
        for t in candidates:
            run = model_run("fused", spec, t, device)
            occ = t.occupancy_on(device)
            yield TuneResult(
                tiling=t,
                seconds=run.total_seconds,
                blocks_per_sm=occ.blocks_per_sm,
                limiter=occ.limiter,
            )

    if top_k is not None:
        return heapq.nsmallest(top_k, evaluate(), key=lambda r: r.seconds)
    results = list(evaluate())
    results.sort(key=lambda r: r.seconds)
    return results


def autotune(
    spec: ProblemSpec,
    candidates: Sequence[TilingConfig] | None = None,
    device: DeviceSpec = GTX970,
    require_conflict_free: bool = False,
) -> TuneResult:
    """Best blocking for ``spec`` on ``device`` under the performance model.

    Streams the candidates through a size-1 min-heap (``top_k=1``) — no
    full sort, no full result list in memory.
    """
    return rank_tilings(spec, candidates, device, require_conflict_free, top_k=1)[0]


def paper_rank(spec: ProblemSpec, device: DeviceSpec = GTX970) -> int:
    """1-based rank of the paper's design point among all candidates."""
    ranked = rank_tilings(spec, None, device)
    key = (PAPER_TILING.mc, PAPER_TILING.nc, PAPER_TILING.kc)
    for i, r in enumerate(ranked):
        if (r.tiling.mc, r.tiling.nc, r.tiling.kc) == key and r.tiling.double_buffered:
            return i + 1
    raise LookupError("paper tiling not among the candidates")
