"""Kernel-summation problem specification and input generation.

The paper's Algorithm 1 fixes the data layout this package uses throughout:

* ``A`` — ``M x K`` row-major matrix of source-point coordinates
  (row ``i`` is the point ``alpha_i``);
* ``B`` — ``K x N`` column-major matrix of target-point coordinates
  (column ``j`` is the point ``beta_j``);
* ``W`` — length-``N`` weight vector;
* output ``V`` — length-``M`` potential vector,
  ``V[i] = sum_j  Kfn(alpha_i, beta_j) * W[j]``.

The evaluation grid is N = 1024 fixed, K in {32, 64, 128, 256}, M from 1024
to 524288 (section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import InvalidProblemError

__all__ = ["ProblemSpec", "ProblemData", "generate"]

#: Parameter grid from the paper's experimental methodology (section IV).
PAPER_K_VALUES = (32, 64, 128, 256)
PAPER_N = 1024
PAPER_M_SWEEP = (1024, 4096, 16384, 65536, 131072, 262144, 524288)
PAPER_M_TABLE = (1024, 131072, 524288)


@dataclass(frozen=True)
class ProblemSpec:
    """Shape and kernel parameters of one kernel-summation instance."""

    M: int
    N: int
    K: int
    h: float = 1.0
    kernel: str = "gaussian"
    dtype: str = "float32"
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.M, self.N, self.K) <= 0:
            raise InvalidProblemError("M, N, K must all be positive")
        if self.h <= 0:
            raise InvalidProblemError("bandwidth h must be positive")
        if self.dtype not in ("float32", "float64"):
            raise InvalidProblemError("dtype must be float32 or float64")

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def interaction_count(self) -> int:
        """Number of pairwise interactions evaluated (M*N)."""
        return self.M * self.N

    @property
    def gemm_flops(self) -> int:
        """FLOPs of the C = A.B product (2*M*N*K)."""
        return 2 * self.M * self.N * self.K

    @property
    def bytes_per_element(self) -> int:
        return self.np_dtype.itemsize

    def with_(self, **kwargs) -> "ProblemSpec":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ProblemData:
    """Concrete inputs for one problem instance."""

    spec: ProblemSpec
    A: np.ndarray  # (M, K) source points, row major
    B: np.ndarray  # (K, N) target points, column major semantics
    W: np.ndarray  # (N,) weights

    def __post_init__(self) -> None:
        s = self.spec
        if self.A.shape != (s.M, s.K):
            raise InvalidProblemError(f"A must be ({s.M}, {s.K}), got {self.A.shape}")
        if self.B.shape != (s.K, s.N):
            raise InvalidProblemError(f"B must be ({s.K}, {s.N}), got {self.B.shape}")
        if self.W.shape != (s.N,):
            raise InvalidProblemError(f"W must be ({s.N},), got {self.W.shape}")
        for name, arr in (("A", self.A), ("B", self.B), ("W", self.W)):
            if arr.dtype != s.np_dtype:
                raise InvalidProblemError(
                    f"{name} has dtype {arr.dtype}, expected {s.np_dtype}"
                )

    @property
    def source_norms(self) -> np.ndarray:
        """``||alpha_i||^2`` per source point (the paper's ``vec_alpha``)."""
        # accumulate in float64 for a stable reference, cast back to data dtype
        return np.einsum("ik,ik->i", self.A, self.A, dtype=np.float64).astype(
            self.spec.np_dtype
        )

    @property
    def target_norms(self) -> np.ndarray:
        """``||beta_j||^2`` per target point (the paper's ``vec_beta``)."""
        return np.einsum("kj,kj->j", self.B, self.B, dtype=np.float64).astype(
            self.spec.np_dtype
        )


def generate(spec: ProblemSpec, point_scale: float = 1.0) -> ProblemData:
    """Draw a reproducible random instance.

    Points are uniform in ``[0, point_scale)^K`` — the usual setting for
    Gaussian-kernel workloads (KDE, kernel regression) where coordinates are
    normalized features — and weights are standard normal, so the output has
    both signs and cancellation is exercised.
    """
    if point_scale <= 0:
        raise InvalidProblemError("point_scale must be positive")
    rng = np.random.default_rng(spec.seed)
    dt = spec.np_dtype
    A = rng.random((spec.M, spec.K), dtype=np.float64).astype(dt) * dt.type(point_scale)
    B = rng.random((spec.K, spec.N), dtype=np.float64).astype(dt) * dt.type(point_scale)
    W = rng.standard_normal(spec.N).astype(dt)
    return ProblemData(spec=spec, A=A, B=B, W=W)
