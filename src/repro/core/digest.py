"""Canonical configuration digesting for the persistent result store.

Every cached experiment record (:mod:`repro.store`) is addressed by a
SHA-256 digest of *everything that determines the answer*: the repro
version, the device configuration, the pipeline/engine pair, the problem
shapes and dtype, the kernel and tiling parameters, and — when present —
the fault/ABFT specification.  Two processes that agree on all of those
produce bit-identical results, so they may share one record; any single
field changing must change the digest, so a stale record can never be
served.

:func:`canonical_payload` flattens the frozen dataclasses this package
uses as configuration (ProblemSpec, TilingConfig, Calibration, DeviceSpec,
FaultSpec, ...) into a deterministic JSON-serializable structure.  Each
dataclass is tagged with its class name so two config types whose field
values coincide still digest differently.  Floats pass through ``repr``
via ``json.dumps`` — Python's shortest-round-trip formatting — so the
digest is exact, not approximate.

:func:`config_digest` stamps the package version into every digest, which
makes a version bump a whole-cache invalidation by construction (records
written by old code are simply never looked up again; ``repro cache
clear`` reclaims the space).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

__all__ = ["canonical_payload", "canonical_json", "config_digest"]


def _version() -> str:
    # indirection so tests can simulate a version bump by monkeypatching
    from .._version import __version__

    return __version__


def canonical_payload(obj: Any) -> Any:
    """Deterministic JSON-ready form of a configuration value.

    Supported: dataclasses (tagged with their class name), mappings with
    string keys, sequences, numpy scalars, and JSON scalars.  Anything
    else is a configuration-design error and raises ``TypeError`` loudly
    rather than digesting an unstable ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical_payload(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__config__": type(obj).__name__, **fields}
    if isinstance(obj, Mapping):
        out = {}
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(f"config mapping keys must be str, got {key!r}")
            out[key] = canonical_payload(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, (int, float)):
        return obj
    # numpy scalars (np.float64, np.int64, ...) expose .item()
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return canonical_payload(item())
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for digesting; "
        "use dataclasses, mappings, sequences, or JSON scalars"
    )


def canonical_json(components: Mapping[str, Any]) -> str:
    """The exact JSON text a digest is computed over (for debugging)."""
    payload = {"repro_version": _version(), **canonical_payload(components)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(components: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a component mapping, version included.

    ``components`` names every ingredient of one cacheable result, e.g.::

        config_digest({
            "kind": "experiment.metrics/v1",
            "implementation": "fused",
            "spec": spec, "tiling": tiling, "cal": cal, "device": device,
        })

    The ``kind`` entry namespaces record schemas so a metrics record and a
    functional-solve record can never collide; bump its ``/vN`` suffix
    when the record layout changes.
    """
    text = canonical_json(components)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
