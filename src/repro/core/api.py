"""High-level public API.

:func:`kernel_summation` is the one-call entry point a downstream user
needs: hand it the point sets and weights, pick a kernel and an
implementation, get the potential vector back.  The implementation registry
also drives the benchmark harness, so every name here is directly
comparable in the experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.spec import FaultSpec

import numpy as np

from ..errors import InvalidProblemError, UnknownImplementationError, UnknownKernelError
from .fused import FusedKernelSummation, fused_kernel_summation
from .kernels import KERNELS
from .problem import ProblemData, ProblemSpec
from .reference import expanded
from .tiling import PAPER_TILING, TilingConfig
from .unfused import cublas_unfused, cuda_unfused

__all__ = [
    "IMPLEMENTATIONS",
    "kernel_summation",
    "fast_kernel_summation",
    "make_problem",
]


def _run_fused(data: ProblemData, tiling: TilingConfig) -> np.ndarray:
    return fused_kernel_summation(data, tiling)


def _run_fused_abft(data: ProblemData, tiling: TilingConfig) -> np.ndarray:
    """The fused kernel with ABFT checksums and CTA re-execution enabled."""
    return FusedKernelSummation(tiling, abft=True)(data)


def _run_cublas_unfused(data: ProblemData, tiling: TilingConfig) -> np.ndarray:
    return cublas_unfused(data).V


def _run_cuda_unfused(data: ProblemData, tiling: TilingConfig) -> np.ndarray:
    return cuda_unfused(data, tiling).V


def _run_reference(data: ProblemData, tiling: TilingConfig) -> np.ndarray:
    return expanded(data)


def _run_fast(data: ProblemData, tiling: TilingConfig) -> np.ndarray:
    """The hierarchical engine at its registry defaults (auto, eps=1e-6)."""
    from ..fast import run_fast

    V, _ = run_fast(data, eps=1e-6, method="auto", tiling=tiling)
    return V


#: Registered implementations, keyed by the names the paper uses.
IMPLEMENTATIONS: Dict[str, Callable[[ProblemData, TilingConfig], np.ndarray]] = {
    "fused": _run_fused,
    "fused-abft": _run_fused_abft,
    "cublas-unfused": _run_cublas_unfused,
    "cuda-unfused": _run_cuda_unfused,
    "reference": _run_reference,
    "fast": _run_fast,
}


def make_problem(
    A: np.ndarray,
    B: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    kernel: str = "gaussian",
    check_finite: bool = True,
) -> ProblemData:
    """Wrap user arrays into a validated :class:`ProblemData`.

    ``A`` is ``(M, K)`` sources, ``B`` is ``(K, N)`` targets, ``W`` is
    ``(N,)`` weights.  Arrays must share a float32/float64 dtype.

    ``check_finite`` rejects NaN/Inf inputs up front (a NaN coordinate
    silently poisons entire rows of the output otherwise); pass ``False``
    to skip the scan on very large inputs you already trust.
    """
    A = np.ascontiguousarray(A)
    B = np.ascontiguousarray(B)
    W = np.ascontiguousarray(W)
    if check_finite:
        for name, arr in (("A", A), ("B", B), ("W", W)):
            if arr.dtype.kind == "f" and not np.isfinite(arr).all():
                raise InvalidProblemError(f"{name} contains NaN or Inf values")
    if A.ndim != 2 or B.ndim != 2 or W.ndim != 1:
        raise InvalidProblemError("A and B must be 2-D, W 1-D")
    if A.size == 0 or B.size == 0 or W.size == 0:
        raise InvalidProblemError(
            "empty point sets are not a valid problem: "
            f"A is {A.shape}, B is {B.shape}, W is {W.shape}"
        )
    if A.dtype != B.dtype or A.dtype != W.dtype:
        raise InvalidProblemError("A, B, W must share one dtype")
    if A.dtype not in (np.float32, np.float64):
        raise InvalidProblemError("dtype must be float32 or float64")
    M, K = A.shape
    K2, N = B.shape
    if K != K2:
        raise InvalidProblemError(
            f"A is {A.shape} but B is {B.shape}: K dimensions disagree"
        )
    if W.shape != (N,):
        raise InvalidProblemError(f"W must have length N={N}, got {W.shape}")
    spec = ProblemSpec(M=M, N=N, K=K, h=h, kernel=kernel, dtype=str(A.dtype))
    return ProblemData(spec=spec, A=A, B=B, W=W)


def kernel_summation(
    A: np.ndarray,
    B: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    kernel: str = "gaussian",
    implementation: str = "fused",
    tiling: TilingConfig = PAPER_TILING,
    fault_spec: Optional["FaultSpec"] = None,
    abft: Optional[bool] = None,
    max_retries: int = 2,
) -> np.ndarray:
    """Compute ``V[i] = sum_j Kfn(a_i, b_j) * W[j]``.

    Parameters
    ----------
    A, B, W:
        Sources ``(M, K)``, targets ``(K, N)``, weights ``(N,)``.
    h:
        Kernel bandwidth (the paper's equation 1 constant).
    kernel:
        One of ``repro.core.kernels.KERNELS`` (default ``"gaussian"``).
    implementation:
        ``"fused"`` (the paper's contribution), ``"fused-abft"`` (same, with
        checksums and recovery always on), ``"cublas-unfused"``,
        ``"cuda-unfused"``, or ``"reference"``.
    tiling:
        Blocking configuration for the tiled implementations.
    fault_spec:
        Optional :class:`repro.faults.FaultSpec`; only valid with the fused
        implementations, where deterministic faults are injected into the
        staging/accumulate/commit path.
    abft:
        Enable checksum detection + CTA re-execution.  Defaults to "on
        whenever faults are injected"; pass ``True`` to pay for checking on
        clean runs too, ``False`` to run unprotected under injection.
    max_retries:
        Bound on per-CTA re-executions before degrading to the reference
        implementation.
    """
    if kernel not in KERNELS:
        raise UnknownKernelError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}"
        )
    if implementation not in IMPLEMENTATIONS:
        raise UnknownImplementationError(
            f"unknown implementation {implementation!r}; "
            f"available: {sorted(IMPLEMENTATIONS)}"
        )
    data = make_problem(A, B, W, h=h, kernel=kernel)
    if fault_spec is not None or abft is not None:
        from ..errors import FaultConfigError

        if implementation not in ("fused", "fused-abft"):
            raise FaultConfigError(
                "fault injection and ABFT apply to the fused implementations "
                f"only, not {implementation!r}"
            )
        use_abft = (fault_spec is not None) if abft is None else abft
        runner = FusedKernelSummation(
            tiling,
            abft=use_abft or implementation == "fused-abft",
            fault_spec=fault_spec,
            max_retries=max_retries,
        )
        return runner(data)
    return IMPLEMENTATIONS[implementation](data, tiling)


def fast_kernel_summation(
    A: np.ndarray,
    B: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    kernel: str = "gaussian",
    method: str = "auto",
    eps: float = 1e-6,
    tiling: TilingConfig = PAPER_TILING,
    workers: Optional[int] = None,
    backend: str = "thread",
    report_error: bool = False,
    error_sample: int = 2048,
    return_report: bool = False,
):
    """Hierarchical (FGT/treecode) kernel summation with an error contract.

    Same problem as :func:`kernel_summation`, evaluated in
    ``O(M + N)`` far-field work instead of ``O(M * N)`` when the points
    allow it: sources and targets are boxed, far interactions go through
    truncated Hermite/Taylor expansions whose order is chosen so that
    ``max_i |V[i] - V_dense[i]| <= eps * sum_j |W[j]|``, and near
    interactions run on the paper's fused kernel as small dense batches.

    Parameters
    ----------
    method:
        ``"auto"`` picks dense below the calibrated crossover, the
        adaptive treecode for heavily clustered sources, and the uniform
        FGT grid otherwise.  ``"dense"``, ``"fgt"``, ``"treecode"``
        force a path (the expansions require the Gaussian kernel and
        ``K <= 3``).
    eps:
        Maximum absolute error per unit of total source mass.  float32
        problems cannot resolve below ~1e-4 regardless of ``eps``.
    workers, backend:
        Near-field parallelism: with ``workers > 1`` the per-box dense
        batches run through ``ResilientSweep``'s ``"thread"`` or
        ``"process"`` backend (inputs shipped via shared memory for the
        latter).  Results are bit-identical across backends.
    report_error:
        Measure the achieved max relative error against the float64
        dense reference on ``error_sample`` rows (all rows when the
        problem is that small) and attach it to the report (implies
        returning ``(V, report_dict)``).
    return_report:
        Return ``(V, report_dict)`` instead of just ``V``.  The report
        carries the method used, truncation order, plan shape, and the
        measured error when requested.
    """
    data = make_problem(A, B, W, h=h, kernel=kernel)
    from ..fast import run_fast, sampled_max_rel_error

    V, report = run_fast(
        data, eps=eps, method=method, tiling=tiling,
        workers=workers, backend=backend,
    )
    if not (report_error or return_report):
        return V
    doc = report.to_dict()
    if report_error:
        doc["max_rel_error"] = sampled_max_rel_error(data, V, sample=error_sample)
        doc["error_sample_rows"] = min(error_sample, data.spec.M)
    return V, doc
