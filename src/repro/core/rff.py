"""Random Fourier Features: the approximation route, for comparison.

The paper's related work divides kernel summation into exact dense methods
(this repository's main subject) and approximations that trade accuracy
for asymptotics; treecodes/FMM fail at high K, but *random Fourier
features* (Rahimi & Recht) do not: Bochner's theorem writes the Gaussian
kernel as an expectation over frequencies,

    K(a, b) = E_w [ cos(w·a + p) · cos(w·b + p) ] · 2,
    w ~ N(0, 1/h^2 I),  p ~ U[0, 2pi),

so with D sampled features z(x) = sqrt(2/D) · cos(W x + p) the whole
summation collapses to two thin GEMMs:

    V ≈ Z_A @ (Z_B^T @ W)        — O((M+N)·K·D) instead of O(M·N·K).

This module provides the estimator plus its standard error bound, so the
examples and tests can show where the dense fused kernel wins (small
problems, high accuracy) and where the approximation wins (huge M·N with
loose tolerance) — the crossover the paper's "related work" paragraph is
implicitly about.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["RandomFourierFeatures", "rff_kernel_summation", "required_features"]


class RandomFourierFeatures:
    """Sampled feature map approximating the Gaussian kernel."""

    def __init__(self, K: int, num_features: int, h: float, seed: int = 0) -> None:
        if K <= 0 or num_features <= 0:
            raise ValueError("K and num_features must be positive")
        if h <= 0:
            raise ValueError("bandwidth h must be positive")
        self.K = K
        self.num_features = num_features
        self.h = h
        rng = np.random.default_rng(seed)
        # w ~ N(0, h^-2 I): then E[cos(w.(a-b))] = exp(-|a-b|^2 / 2h^2)
        self.W = rng.standard_normal((K, num_features)) / h
        self.phases = rng.uniform(0.0, 2.0 * np.pi, num_features)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Feature map: points (n, K) -> features (n, D), float64 inside."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self.K:
            raise ValueError(f"points must be (n, {self.K}), got {pts.shape}")
        proj = pts @ self.W + self.phases[None, :]
        return np.sqrt(2.0 / self.num_features) * np.cos(proj)

    def approximate_kernel(self, A: np.ndarray, B_cols: np.ndarray) -> np.ndarray:
        """Approximate kernel matrix between rows of A and columns of B."""
        return self.transform(A) @ self.transform(B_cols.T).T


def rff_kernel_summation(
    A: np.ndarray,
    B: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    num_features: int = 1024,
    seed: int = 0,
) -> np.ndarray:
    """Approximate ``V = K_mat @ W`` with random Fourier features.

    Cost is O((M+N)·K·D + (M+N)·D) — linear in M and N — versus the exact
    methods' O(M·N·K).  Error decays as ``O(1/sqrt(num_features))``.
    """
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} x {B.shape}")
    if W.shape != (B.shape[1],):
        raise ValueError(f"W must have length {B.shape[1]}, got {W.shape}")
    rff = RandomFourierFeatures(A.shape[1], num_features, h, seed)
    zb_w = rff.transform(B.T) .T @ W.astype(np.float64)  # (D,)
    V = rff.transform(A) @ zb_w
    return V.astype(A.dtype)


def required_features(epsilon: float, confidence: float = 0.95) -> int:
    """Features needed for per-entry error ``<= epsilon`` w.h.p.

    From the Hoeffding bound on the D-sample mean of bounded (|z| <= 2)
    terms: ``D >= 8 ln(2 / delta) / epsilon^2``.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    delta = 1.0 - confidence
    return math.ceil(8.0 * math.log(2.0 / delta) / (epsilon * epsilon))
