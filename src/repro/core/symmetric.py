"""Symmetric kernel summation (sources == targets).

In KDE, kernel regression on the training set, and self-interaction
N-body problems the two point sets coincide; the kernel matrix is then
symmetric (``K(a_i, a_j) = K(a_j, a_i)``), so only the upper triangle of
the tile grid needs evaluating — each off-diagonal 128x128 block
contributes to two output slices at once.  That halves the dominant
O(M^2 K) work; the GPU fused kernel does not exploit this (the divergent
tile shapes fight the uniform CTA grid), which makes it a natural
host-side extension and ablation point.
"""

from __future__ import annotations

import numpy as np

from .gemm import pad_to_tiles
from .kernels import get_kernel
from .tiling import PAPER_TILING, TilingConfig

__all__ = ["symmetric_kernel_summation"]


def symmetric_kernel_summation(
    points: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    kernel: str = "gaussian",
    tiling: TilingConfig = PAPER_TILING,
) -> np.ndarray:
    """``V[i] = sum_j Kfn(x_i, x_j) W[j]`` over one point set.

    ``points`` is ``(M, K)`` row-major; ``W`` has length ``M``.  Each
    off-diagonal tile pair is evaluated once: the block ``(bi, bj)`` with
    ``bi < bj`` contributes ``K_blk @ W_j`` to ``V_i`` and ``K_blk.T @
    W_i`` to ``V_j``.
    """
    if points.ndim != 2:
        raise ValueError("points must be 2-D (M, K)")
    M = points.shape[0]
    if W.shape != (M,):
        raise ValueError(f"W must have length {M}, got {W.shape}")
    if h <= 0:
        raise ValueError("bandwidth h must be positive")
    if points.dtype not in (np.float32, np.float64):
        raise ValueError("dtype must be float32 or float64")
    if W.dtype != points.dtype:
        raise ValueError("points and W must share one dtype")
    kf = get_kernel(kernel)
    dt = points.dtype
    t = tiling

    P = pad_to_tiles(np.ascontiguousarray(points), t.mc, t.kc)
    Wp = np.pad(W, (0, (-M) % t.mc))
    norms = np.pad(
        np.einsum("ik,ik->i", points.astype(np.float64), points.astype(np.float64)).astype(dt),
        (0, (-M) % t.mc),
    )
    Mp, Kp = P.shape
    blocks = Mp // t.mc
    PT = P.T.copy()  # the "B" view of the same points

    V = np.zeros(Mp, dtype=dt)
    for bi in range(blocks):
        r0, r1 = bi * t.mc, (bi + 1) * t.mc
        for bj in range(bi, blocks):
            c0, c1 = bj * t.mc, (bj + 1) * t.mc
            subC = np.zeros((t.mc, t.mc), dtype=dt)
            for k0 in range(0, Kp, t.kc):
                subC += P[r0:r1, k0 : k0 + t.kc] @ PT[k0 : k0 + t.kc, c0:c1]
            sq = norms[r0:r1, None] + norms[None, c0:c1] - dt.type(2.0) * subC
            Kblk = kf.evaluate(sq, h)
            V[r0:r1] += Kblk @ Wp[c0:c1]
            if bj > bi:
                # the mirrored block, for free
                V[c0:c1] += Kblk.T @ Wp[r0:r1]
    return V[:M]
