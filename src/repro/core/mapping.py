"""Thread <-> track <-> bank mapping for staging tiles in shared memory.

This implements the paper's Figure 5.  The setting: a CTA stages a 128 x 8
``tileA`` and an 8 x 128 ``tileB`` into shared memory every k-panel.  One
half of the 256 threads (128 threads = 4 warps) loads ``tileA``, the other
half ``tileB``.  Each tile is split into 16 microtiles of 8 x 8, and each
microtile into eight 8-element *tracks* (one track = the 8 contiguous
elements of one point: a row of A, or a column of B).

Two layouts are provided:

**Naive** — tiles stored row-major (``addr = k * 128 + n``).  Stores are
conflict-free (thread ``l`` writes column ``l``, hitting bank ``l mod 32``
every phase), but the compute-phase loads conflict four ways: thread ``tx``
reads words ``8*tx + c``, and ``8*tx mod 32`` collides for
``tx, tx+4, tx+8, tx+12``.

**Optimized (Fig. 5)** — each 8 x 8 microtile is *reconstructed as 32 x 2*:
microtile ``m`` owns bank pair ``{2m, 2m+1}`` across all 32 rows, so the 16
microtiles exactly cover the 32 banks.  Track ``t`` of microtile ``m`` lands
in bank ``2m + (t mod 2)``, rows ``8*(t//2) .. 8*(t//2)+7``:

* *stores*: thread with lane ``l`` in loader-warp ``w`` fetches track
  ``(l mod 2) + 2w`` of microtile ``l // 2`` and writes it into bank ``l``,
  rows ``8w..8w+7`` — every store phase touches 32 distinct banks;
* *loads*: at k-step ``k``, thread ``(tx, ty)`` reads its microtile's eight
  values from bank pair ``{2tx, 2tx+1}`` (B) or ``{2ty, 2ty+1}`` (A); the 16
  distinct ``tx`` of a warp cover all 32 banks and same-``tx`` lane pairs
  read identical words, which the hardware broadcasts.

Both properties are *verified*, not assumed: the audit functions at the
bottom assemble real warp address vectors and count transactions with
:func:`repro.gpu.sharedmem.warp_transactions`, and the SIMT tests execute
the whole staging loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..gpu.sharedmem import warp_transactions
from .tiling import TilingConfig, PAPER_TILING

__all__ = [
    "TrackAssignment",
    "optimized_address",
    "naive_address",
    "store_assignment",
    "compute_load_addresses",
    "audit_store_conflicts",
    "audit_load_conflicts",
]

Layout = Literal["optimized", "naive"]


def optimized_address(track_pos: int, point: int, kc: int = 8) -> int:
    """Shared-memory word address of tile element (track_pos, point).

    ``point`` indexes the 128 points of the tile (column of B / row of A);
    ``track_pos`` indexes the ``kc`` elements along the track.  The layout
    is the Fig.-5 "32 x 2 microtile" arrangement described above.
    """
    if not 0 <= track_pos < kc:
        raise ValueError(f"track_pos {track_pos} outside [0, {kc})")
    if not 0 <= point < 128:
        raise ValueError(f"point {point} outside [0, 128)")
    microtile, track = divmod(point, kc)
    row = kc * (track // 2) + track_pos
    bank = 2 * microtile + (track % 2)
    return row * 32 + bank


def naive_address(track_pos: int, point: int, kc: int = 8) -> int:
    """Row-major tile layout: ``addr = track_pos * 128 + point``."""
    if not 0 <= track_pos < kc:
        raise ValueError(f"track_pos {track_pos} outside [0, {kc})")
    if not 0 <= point < 128:
        raise ValueError(f"point {point} outside [0, 128)")
    return track_pos * 128 + point


def _address_fn(layout: Layout):
    if layout == "optimized":
        return optimized_address
    if layout == "naive":
        return naive_address
    raise ValueError(f"unknown layout {layout!r}")


@dataclass(frozen=True)
class TrackAssignment:
    """Which track a loader thread fetches and where it stores it."""

    loader_index: int  # 0..127 within the half-block loading this tile
    microtile: int  # 0..15
    track: int  # 0..7
    smem_addresses: tuple  # word address per track element

    @property
    def point(self) -> int:
        """Global point index within the tile (column of B / row of A)."""
        return self.microtile * 8 + self.track


def store_assignment(
    loader_index: int, layout: Layout = "optimized", kc: int = 8
) -> TrackAssignment:
    """Store schedule for one of the 128 loader threads of a tile.

    Optimized: warp ``w = loader//32``, lane ``l = loader%32`` fetches track
    ``(l % 2) + 2w`` of microtile ``l // 2``.  Naive: thread ``l`` fetches
    point ``loader_index`` directly (track ``l % 8`` of microtile ``l // 8``).
    """
    if not 0 <= loader_index < 128:
        raise ValueError("loader_index must lie in [0, 128)")
    addr = _address_fn(layout)
    if layout == "optimized":
        warp, lane = divmod(loader_index, 32)
        microtile, track = lane // 2, (lane % 2) + 2 * warp
    else:
        microtile, track = divmod(loader_index, kc)
    point = microtile * kc + track
    addresses = tuple(addr(p, point, kc) for p in range(kc))
    return TrackAssignment(loader_index, microtile, track, addresses)


def compute_load_addresses(
    thread_coord: int, k_step: int, layout: Layout = "optimized", kc: int = 8
) -> np.ndarray:
    """Word addresses a compute thread reads for its microtile at one k-step.

    ``thread_coord`` is ``tx`` when loading from tileB (thread consumes
    points ``8*tx .. 8*tx+7``) and ``ty`` for tileA — the mapping is
    symmetric.
    """
    if not 0 <= thread_coord < 16:
        raise ValueError("thread_coord must lie in [0, 16)")
    if not 0 <= k_step < kc:
        raise ValueError(f"k_step outside [0, {kc})")
    addr = _address_fn(layout)
    base = thread_coord * 8
    return np.array([addr(k_step, base + c, kc) for c in range(8)], dtype=np.int64)


# --------------------------------------------------------------------------
# Conflict audits: build real warp address vectors and count transactions.
# --------------------------------------------------------------------------


def audit_store_conflicts(layout: Layout = "optimized", kc: int = 8) -> int:
    """Total store replays across all 4 loader warps x ``kc`` store phases."""
    replays = 0
    for warp in range(4):
        assigns = [store_assignment(warp * 32 + lane, layout, kc) for lane in range(32)]
        for phase in range(kc):
            addrs = np.array([a.smem_addresses[phase] for a in assigns], dtype=np.int64)
            replays += warp_transactions(addrs) - 1
    return replays


def audit_load_conflicts(
    layout: Layout = "optimized",
    tiling: TilingConfig = PAPER_TILING,
    which: Literal["A", "B"] = "B",
) -> int:
    """Total load replays for the compute phase of one k-panel.

    Walks every warp of the 16 x 16 block through all ``kc`` k-steps and the
    8 per-element load instructions, counting replays.  A warp spans two
    consecutive ``ty`` rows (lanes = ``ty * 16 + tx``); for tileB lanes with
    equal ``tx`` read the same word (broadcast), for tileA all lanes of a
    half-warp share ``ty`` and the whole row broadcasts.
    """
    if which not in ("A", "B"):
        raise ValueError("which must be 'A' or 'B'")
    bx, by = tiling.block_dim_x, tiling.block_dim_y
    replays = 0
    for warp_start in range(0, bx * by, 32):
        lanes = np.arange(warp_start, warp_start + 32)
        tx, ty = lanes % bx, lanes // bx
        coord = tx if which == "B" else ty
        for k_step in range(tiling.kc):
            per_lane = np.stack(
                [compute_load_addresses(int(c), k_step, layout, tiling.kc) for c in coord]
            )  # (32 lanes, 8 elements)
            for instr in range(8):
                replays += warp_transactions(per_lane[:, instr]) - 1
    return replays
