"""Library self-test: cross-implementation parity on random problems.

A downstream user who wonders "is this numerically trustworthy on *my*
machine / BLAS / NumPy version?" runs :func:`parity_check`: it sweeps a set
of problem shapes, runs every registered implementation, and verifies they
agree with the float64 brute-force reference within the a-priori error
bounds of :mod:`repro.core.accuracy`.  Exposed as
``python -m repro selftest``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .accuracy import potential_error_bound
from .api import IMPLEMENTATIONS
from .problem import ProblemSpec, generate
from .reference import direct
from .tiling import PAPER_TILING

__all__ = ["ParityResult", "parity_check", "DEFAULT_SHAPES"]

#: shape set exercising exact tiles, padding, small and skinny problems
DEFAULT_SHAPES = (
    (128, 128, 8),
    (256, 256, 32),
    (300, 200, 17),
    (1024, 512, 64),
    (37, 1000, 3),
)


@dataclass(frozen=True)
class ParityResult:
    """Outcome of one (implementation, shape) parity check."""

    implementation: str
    spec: ProblemSpec
    max_abs_error: float
    bound: float

    @property
    def ok(self) -> bool:
        return self.max_abs_error <= self.bound

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{self.implementation:16s} M={self.spec.M:5d} N={self.spec.N:5d} "
            f"K={self.spec.K:3d}: err={self.max_abs_error:.2e} "
            f"bound={self.bound:.2e} [{verdict}]"
        )


def parity_check(
    shapes: Sequence[tuple[int, int, int]] = DEFAULT_SHAPES,
    h: float = 0.8,
    seed: int = 0,
    implementations: Sequence[str] | None = None,
) -> List[ParityResult]:
    """Run every implementation over ``shapes``; returns per-case results.

    Raises ``ValueError`` for unknown implementation names so typos fail
    loudly rather than silently skipping.
    """
    if implementations is None:
        implementations = sorted(IMPLEMENTATIONS)
    unknown = set(implementations) - set(IMPLEMENTATIONS)
    if unknown:
        raise ValueError(f"unknown implementations: {sorted(unknown)}")

    results: List[ParityResult] = []
    for i, (M, N, K) in enumerate(shapes):
        spec = ProblemSpec(M=M, N=N, K=K, h=h, seed=seed + i)
        data = generate(spec)
        ref = direct(data).astype(np.float64)
        bound = potential_error_bound(data)
        for name in implementations:
            out = IMPLEMENTATIONS[name](data, PAPER_TILING).astype(np.float64)
            err = float(np.max(np.abs(out - ref)))
            results.append(ParityResult(name, spec, err, bound))
    return results
