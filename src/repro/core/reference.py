"""Golden reference implementations.

Two independent formulations of the kernel summation, both straight NumPy:

* :func:`direct` evaluates pairwise distances without the GEMM expansion —
  slow but immune to the cancellation the expansion introduces; used as the
  accuracy anchor in tests;
* :func:`expanded` follows the paper's Algorithm 1 literally (norms + GEMM +
  kernel evaluation + GEMV), in float64 accumulation; this is the value the
  GPU-blocked implementations are compared against.

Both return the length-``M`` potential vector ``V``.
"""

from __future__ import annotations

import numpy as np

from .kernels import get_kernel
from .problem import ProblemData

__all__ = ["direct", "expanded", "pairwise_sqdist", "kernel_matrix"]


def pairwise_sqdist(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Exact squared distances ``||a_i - b_j||^2`` as an (M, N) float64 array."""
    A64 = np.asarray(A, dtype=np.float64)
    B64 = np.asarray(B, dtype=np.float64)
    if A64.ndim != 2 or B64.ndim != 2 or A64.shape[1] != B64.shape[0]:
        raise ValueError(f"incompatible shapes {A64.shape} x {B64.shape}")
    diff = A64[:, :, None] - B64[None, :, :]
    return np.einsum("mkn,mkn->mn", diff, diff)


def kernel_matrix(data: ProblemData) -> np.ndarray:
    """The full (M, N) kernel interaction matrix in float64."""
    kf = get_kernel(data.spec.kernel)
    sq = pairwise_sqdist(data.A, data.B)
    return kf.fn(sq, data.spec.h)


def direct(data: ProblemData, block: int = 512) -> np.ndarray:
    """Row-blocked direct evaluation (no expansion identity), float64 inside.

    ``block`` bounds the live (block, N) slab so this stays usable at
    M = 131072 without allocating the whole M x N matrix.
    """
    if block <= 0:
        raise ValueError("block must be positive")
    spec = data.spec
    kf = get_kernel(spec.kernel)
    A64 = data.A.astype(np.float64)
    B64 = data.B.astype(np.float64)
    W64 = data.W.astype(np.float64)
    V = np.empty(spec.M, dtype=np.float64)
    for lo in range(0, spec.M, block):
        hi = min(lo + block, spec.M)
        sq = pairwise_sqdist(A64[lo:hi], B64)
        V[lo:hi] = kf.fn(sq, spec.h) @ W64
    return V.astype(spec.np_dtype)


def expanded(data: ProblemData) -> np.ndarray:
    """Algorithm 1 of the paper: norms + GEMM + kernel evaluation + GEMV."""
    spec = data.spec
    kf = get_kernel(spec.kernel)
    A64 = data.A.astype(np.float64)
    B64 = data.B.astype(np.float64)
    norm_a = np.einsum("ik,ik->i", A64, A64)
    norm_b = np.einsum("kj,kj->j", B64, B64)
    C = A64 @ B64
    R = norm_a[:, None] + norm_b[None, :] - 2.0 * C
    Kmat = kf.fn(np.maximum(R, 0.0), spec.h)
    V = Kmat @ data.W.astype(np.float64)
    return V.astype(spec.np_dtype)
