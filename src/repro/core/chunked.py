"""Out-of-core kernel summation for very large source sets.

The fused GPU kernel's whole point is that only the inputs and the output
vector touch memory — so arbitrarily large ``M`` streams through in row
blocks with bounded footprint.  This module provides the host-side
equivalent: :func:`chunked_kernel_summation` evaluates the potentials in
``chunk_rows``-row slabs, never materializing more than one slab of the
interaction matrix, and accepts a callback for progress reporting.

It exists for two reasons: as a practical API for ``M`` far beyond what a
dense M x N buffer allows, and as the ground truth for the library's
memory-footprint guarantee, which the tests assert by instrumenting the
chunk loop.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .kernels import get_kernel

__all__ = ["chunked_kernel_summation"]


def chunked_kernel_summation(
    A: np.ndarray,
    B: np.ndarray,
    W: np.ndarray,
    h: float = 1.0,
    kernel: str = "gaussian",
    chunk_rows: int = 4096,
    progress: Optional[Callable[[int, int], None]] = None,
) -> np.ndarray:
    """Evaluate ``V[i] = sum_j Kfn(a_i, b_j) W[j]`` in bounded memory.

    Peak extra memory is ``chunk_rows x N`` elements (one slab of the
    interaction matrix) regardless of ``M``.  ``progress(done, total)`` is
    invoked after each slab.
    """
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} x {B.shape}")
    if W.shape != (B.shape[1],):
        raise ValueError(f"W must have length {B.shape[1]}, got {W.shape}")
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    if h <= 0:
        raise ValueError("bandwidth h must be positive")
    kf = get_kernel(kernel)
    dt = A.dtype
    M = A.shape[0]

    # norms once (O(M + N) memory)
    norm_a = np.einsum("ik,ik->i", A, A, dtype=np.float64)
    norm_b = np.einsum("kj,kj->j", B, B, dtype=np.float64)
    B64 = B.astype(np.float64, copy=False)
    W64 = W.astype(np.float64, copy=False)

    V = np.empty(M, dtype=dt)
    for lo in range(0, M, chunk_rows):
        hi = min(lo + chunk_rows, M)
        C = A[lo:hi].astype(np.float64, copy=False) @ B64
        sq = norm_a[lo:hi, None] + norm_b[None, :] - 2.0 * C
        np.maximum(sq, 0.0, out=sq)
        V[lo:hi] = (kf.fn(sq, h) @ W64).astype(dt)
        if progress is not None:
            progress(hi, M)
    return V
