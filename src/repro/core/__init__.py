"""The paper's contribution: fused GPGPU kernel summation.

Functional implementations (NumPy arithmetic with the GPU's exact blocking
and reduction structure) of the three variants the paper compares — Fused,
CUDA-Unfused, cuBLAS-Unfused — plus the problem/kernels/tiling vocabulary
they share and the Fig.-5 shared-memory mapping.
"""

from .api import IMPLEMENTATIONS, kernel_summation, make_problem
from .autotune import (
    TUNE_RESULT_SCHEMA,
    TuneResult,
    autotune,
    candidate_tilings,
    rank_tilings,
)
from .fused import FusedKernelSummation, fused_kernel_summation
from .gemm import TiledGemm, pad_to_tiles, tiled_gemm
from .kernels import KERNELS, KernelFunction, get_kernel
from .accuracy import (
    expansion_error_bound,
    measured_expansion_error,
    potential_error_bound,
    summation_error_bound,
)
from .chunked import chunked_kernel_summation
from .multi import multi_kernel_summation, multi_reference
from .rff import RandomFourierFeatures, required_features, rff_kernel_summation
from .selftest import ParityResult, parity_check
from .symmetric import symmetric_kernel_summation
from .problem import (
    PAPER_K_VALUES,
    PAPER_M_SWEEP,
    PAPER_M_TABLE,
    PAPER_N,
    ProblemData,
    ProblemSpec,
    generate,
)
from .reference import direct, expanded, kernel_matrix, pairwise_sqdist
from .simt_kernels import run_block_reduction, run_stage_and_multiply
from .tiling import PAPER_TILING, TilingConfig
from .unfused import PipelineResult, UnfusedPipeline, cublas_unfused, cuda_unfused

__all__ = [
    "kernel_summation",
    "make_problem",
    "IMPLEMENTATIONS",
    "ProblemSpec",
    "ProblemData",
    "generate",
    "PAPER_K_VALUES",
    "PAPER_N",
    "PAPER_M_SWEEP",
    "PAPER_M_TABLE",
    "KernelFunction",
    "KERNELS",
    "get_kernel",
    "TilingConfig",
    "PAPER_TILING",
    "TiledGemm",
    "tiled_gemm",
    "pad_to_tiles",
    "FusedKernelSummation",
    "fused_kernel_summation",
    "UnfusedPipeline",
    "PipelineResult",
    "cublas_unfused",
    "cuda_unfused",
    "direct",
    "expanded",
    "kernel_matrix",
    "pairwise_sqdist",
    "run_stage_and_multiply",
    "run_block_reduction",
    "autotune",
    "candidate_tilings",
    "rank_tilings",
    "TuneResult",
    "TUNE_RESULT_SCHEMA",
    "multi_kernel_summation",
    "multi_reference",
    "chunked_kernel_summation",
    "RandomFourierFeatures",
    "rff_kernel_summation",
    "required_features",
    "expansion_error_bound",
    "measured_expansion_error",
    "summation_error_bound",
    "potential_error_bound",
    "parity_check",
    "ParityResult",
    "symmetric_kernel_summation",
]
