"""Functional tiled SGEMM with the paper's blocking structure.

This is the CUDA-C GEMM of section III-A expressed over NumPy blocks: the
CTA grid, the rank-``kc`` panel loop, and the per-panel accumulation order
are identical to the GPU kernel, so the float32 result tracks what the
hardware would produce.  (Within one 128 x kc by kc x 128 panel product we
let NumPy multiply — the microtile decomposition inside a panel changes
only *which thread* computes an element, not the arithmetic or its
k-ordering.)

Arbitrary shapes are supported by zero-padding up to the tile grid — the
GPU kernel would instead predicate the boundary threads; zero padding is
arithmetically identical for GEMM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.tracer import span
from .tiling import PAPER_TILING, TilingConfig

__all__ = ["pad_to_tiles", "tiled_gemm", "TiledGemm"]


def pad_to_tiles(
    X: np.ndarray, row_multiple: int, col_multiple: int
) -> np.ndarray:
    """Zero-pad a 2-D array so both dimensions hit the tile multiples."""
    if X.ndim != 2:
        raise ValueError("expected a 2-D array")
    r, c = X.shape
    pr = (-r) % row_multiple
    pc = (-c) % col_multiple
    if pr == 0 and pc == 0:
        return X
    return np.pad(X, ((0, pr), (0, pc)))


class TiledGemm:
    """``C = A @ B`` computed CTA-by-CTA with rank-``kc`` panel updates.

    Instances are reusable across calls; :meth:`__call__` validates shapes
    and dtypes each time.  ``out`` lets the unfused pipeline write into a
    preallocated intermediate (mirroring the GPU, where the GEMM output
    buffer round-trips through DRAM).
    """

    def __init__(self, tiling: TilingConfig = PAPER_TILING) -> None:
        self.tiling = tiling

    def __call__(
        self, A: np.ndarray, B: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if A.ndim != 2 or B.ndim != 2:
            raise ValueError("A and B must be 2-D")
        M, K = A.shape
        K2, N = B.shape
        if K != K2:
            raise ValueError(f"inner dimensions disagree: {A.shape} @ {B.shape}")
        if A.dtype != B.dtype:
            raise ValueError(f"mixed dtypes: {A.dtype} vs {B.dtype}")
        dt = A.dtype
        t = self.tiling

        Ap = pad_to_tiles(A, t.mc, t.kc)
        Bp = pad_to_tiles(B, t.kc, t.nc)
        Mp, Kp = Ap.shape
        _, Np = Bp.shape

        if out is not None:
            if out.shape != (M, N) or out.dtype != dt:
                raise ValueError("out must be (M, N) with the input dtype")
            C = out
        else:
            C = np.empty((M, N), dtype=dt)

        k_iters = Kp // t.kc
        grid_x, grid_y = Np // t.nc, Mp // t.mc
        with span(
            "gemm.tiled", M=M, N=N, K=K, grid_x=grid_x, grid_y=grid_y
        ):
            for by in range(grid_y):
                r0, r1 = by * t.mc, (by + 1) * t.mc
                for bx in range(grid_x):
                    c0, c1 = bx * t.nc, (bx + 1) * t.nc
                    with span("gemm.cta", bx=bx, by=by):
                        acc = np.zeros((t.mc, t.nc), dtype=dt)
                        for ki in range(k_iters):
                            k0, k1 = ki * t.kc, (ki + 1) * t.kc
                            # rank-kc update; NumPy keeps float32 arithmetic
                            # for float32 inputs, matching the GPU's FFMA
                            # chain.
                            acc += Ap[r0:r1, k0:k1] @ Bp[k0:k1, c0:c1]
                        rr, cc = min(r1, M), min(c1, N)
                        C[r0:rr, c0:cc] = acc[: rr - r0, : cc - c0]
        return C


def tiled_gemm(
    A: np.ndarray,
    B: np.ndarray,
    tiling: TilingConfig = PAPER_TILING,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Convenience wrapper around :class:`TiledGemm`."""
    return TiledGemm(tiling)(A, B, out=out)
