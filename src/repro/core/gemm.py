"""Functional tiled SGEMM with the paper's blocking structure.

This is the CUDA-C GEMM of section III-A expressed over NumPy blocks: the
CTA grid, the rank-``kc`` panel loop, and the per-panel accumulation order
are identical to the GPU kernel, so the float32 result tracks what the
hardware would produce.  (Within one 128 x kc by kc x 128 panel product we
let NumPy multiply — the microtile decomposition inside a panel changes
only *which thread* computes an element, not the arithmetic or its
k-ordering.)

Arbitrary shapes are supported by zero-padding up to the tile grid — the
GPU kernel would instead predicate the boundary threads; zero padding is
arithmetically identical for GEMM.

Execution engines
-----------------
:class:`TiledGemm` has two execution paths producing bit-identical output
(see docs/PERFORMANCE.md):

* ``engine="loop"`` — the original per-CTA Python loop, one small matmul
  per ``(bx, by, ki)``;
* ``engine="batched"`` (what ``"auto"`` selects) — row chunks of the
  output are computed full-width, one ``(rows x kc) @ (kc x Np)`` BLAS
  call per k-panel.  Each output element still accumulates its rank-``kc``
  updates in the same panel order, and a GEMM's per-element dot products do
  not depend on how the surrounding output is blocked, so the bits match
  the loop path exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.tracer import span
from .tiling import PAPER_TILING, TilingConfig

__all__ = ["pad_to_tiles", "pad_vector", "tiled_gemm", "TiledGemm"]

#: engine names shared by TiledGemm and FusedKernelSummation
ENGINES = ("auto", "batched", "loop")


def pad_to_tiles(
    X: np.ndarray, row_multiple: int, col_multiple: int
) -> np.ndarray:
    """Zero-pad a 2-D array so both dimensions hit the tile multiples.

    Returns ``X`` itself (no copy) when both dimensions are already
    aligned.
    """
    if X.ndim != 2:
        raise ValueError("expected a 2-D array")
    r, c = X.shape
    pr = (-r) % row_multiple
    pc = (-c) % col_multiple
    if pr == 0 and pc == 0:
        return X
    return np.pad(X, ((0, pr), (0, pc)))


def pad_vector(x: np.ndarray, multiple: int) -> np.ndarray:
    """Zero-pad a 1-D array to a length multiple; no copy when aligned."""
    if x.ndim != 1:
        raise ValueError("expected a 1-D array")
    p = (-x.shape[0]) % multiple
    if p == 0:
        return x
    return np.pad(x, (0, p))


def _auto_chunk_rows(Np: int, itemsize: int, budget_bytes: int = 1 << 20) -> int:
    """Row-chunk height keeping the two working buffers cache-resident."""
    rows = budget_bytes // max(1, 2 * Np * itemsize)
    return max(16, min(4096, int(rows)))


class TiledGemm:
    """``C = A @ B`` computed CTA-by-CTA with rank-``kc`` panel updates.

    Instances are reusable across calls; :meth:`__call__` validates shapes
    and dtypes each time.  ``out`` lets the unfused pipeline write into a
    preallocated intermediate (mirroring the GPU, where the GEMM output
    buffer round-trips through DRAM).

    ``engine`` selects the execution path (``"auto"``/``"batched"``/
    ``"loop"``, see the module docstring); the path actually taken by the
    most recent call is recorded in :attr:`last_engine`.
    """

    def __init__(
        self,
        tiling: TilingConfig = PAPER_TILING,
        engine: str = "auto",
        chunk_rows: Optional[int] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; use auto | batched | loop")
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        self.tiling = tiling
        self.engine = engine
        self.chunk_rows = chunk_rows
        #: engine used by the most recent call ("batched" or "loop")
        self.last_engine: Optional[str] = None

    def __call__(
        self, A: np.ndarray, B: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if A.ndim != 2 or B.ndim != 2:
            raise ValueError("A and B must be 2-D")
        M, K = A.shape
        K2, N = B.shape
        if K != K2:
            raise ValueError(f"inner dimensions disagree: {A.shape} @ {B.shape}")
        if A.dtype != B.dtype:
            raise ValueError(f"mixed dtypes: {A.dtype} vs {B.dtype}")
        dt = A.dtype
        t = self.tiling

        Ap = pad_to_tiles(A, t.mc, t.kc)
        Bp = pad_to_tiles(B, t.kc, t.nc)
        Mp, Kp = Ap.shape
        _, Np = Bp.shape

        if out is not None:
            if out.shape != (M, N) or out.dtype != dt:
                raise ValueError("out must be (M, N) with the input dtype")
            C = out
        else:
            C = np.empty((M, N), dtype=dt)

        k_iters = Kp // t.kc
        grid_x, grid_y = Np // t.nc, Mp // t.mc
        self.last_engine = "loop" if self.engine == "loop" else "batched"
        with span(
            "gemm.tiled",
            M=M, N=N, K=K, grid_x=grid_x, grid_y=grid_y, engine=self.last_engine,
        ):
            if self.last_engine == "batched":
                self._run_batched(Ap, Bp, C, M, N, Np, k_iters, dt)
            else:
                self._run_loop(Ap, Bp, C, M, N, Np, Mp, k_iters, dt)
        return C

    def _run_loop(self, Ap, Bp, C, M, N, Np, Mp, k_iters, dt) -> None:
        t = self.tiling
        for by in range(Mp // t.mc):
            r0, r1 = by * t.mc, (by + 1) * t.mc
            for bx in range(Np // t.nc):
                c0, c1 = bx * t.nc, (bx + 1) * t.nc
                with span("gemm.cta", bx=bx, by=by):
                    acc = np.zeros((t.mc, t.nc), dtype=dt)
                    for ki in range(k_iters):
                        k0, k1 = ki * t.kc, (ki + 1) * t.kc
                        # rank-kc update; NumPy keeps float32 arithmetic
                        # for float32 inputs, matching the GPU's FFMA
                        # chain.
                        acc += Ap[r0:r1, k0:k1] @ Bp[k0:k1, c0:c1]
                    rr, cc = min(r1, M), min(c1, N)
                    C[r0:rr, c0:cc] = acc[: rr - r0, : cc - c0]

    def _run_batched(self, Ap, Bp, C, M, N, Np, k_iters, dt) -> None:
        t = self.tiling
        Mp = Ap.shape[0]
        chunk = self.chunk_rows or _auto_chunk_rows(Np, dt.itemsize)
        acc = np.empty((min(chunk, Mp), Np), dtype=dt)
        tmp = np.empty_like(acc)
        for r0 in range(0, Mp, chunk):
            r1 = min(r0 + chunk, Mp)
            R = r1 - r0
            a, b = acc[:R], tmp[:R]
            with span("gemm.chunk", r0=r0, rows=R):
                # same start-from-zero + per-panel add sequence as the CTA
                # loop; copying the first panel instead would keep a -0.0
                # that the loop's ``0 + x`` turns into +0.0
                a[...] = 0
                for ki in range(k_iters):
                    k0, k1 = ki * t.kc, (ki + 1) * t.kc
                    np.matmul(Ap[r0:r1, k0:k1], Bp[k0:k1, :], out=b)
                    np.add(a, b, out=a)
                rr = min(r1, M)
                if rr > r0:
                    C[r0:rr, :] = a[: rr - r0, :N]


def tiled_gemm(
    A: np.ndarray,
    B: np.ndarray,
    tiling: TilingConfig = PAPER_TILING,
    out: Optional[np.ndarray] = None,
    engine: str = "auto",
) -> np.ndarray:
    """Convenience wrapper around :class:`TiledGemm`."""
    return TiledGemm(tiling, engine=engine)(A, B, out=out)
