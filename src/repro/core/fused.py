"""Fused kernel summation (the paper's Algorithm 2), functional layer.

Every CTA ``(bx, by)`` of the GEMM grid:

1. accumulates its 128 x 128 ``subC`` through the rank-8 panel loop
   (double-buffered on the GPU; arithmetic-order-identical here);
2. applies the kernel function to
   ``||a||^2 + ||b||^2 - 2 subC`` entirely out of registers;
3. reduces in three levels — intra-thread (each thread row-sums its 8 x 8
   microtile against its weight slice), intra-CTA (the 16 thread partials of
   each row are summed in thread order), inter-CTA (each CTA ``atomicAdd``-s
   its 128-element ``partialV`` into ``V``).

The inter-CTA atomic order is *not deterministic on hardware*; float32
addition is not associative, so the paper's kernel returns slightly
different bits run to run.  :class:`FusedKernelSummation` exposes that
through ``cta_order``: ``"rowmajor"`` (deterministic default),
``"colmajor"``, or ``"shuffled"`` with a seed — tests use this to bound the
non-determinism instead of pretending it away.

Fault tolerance (``abft=True``)
-------------------------------
Fusion trades the DRAM intermediate away, so a transient fault inside a CTA
has no redundant copy to cross-check against.  The ABFT layer restores
redundancy with two cheap per-CTA invariants:

* **GEMM column checksum** — ``e^T subC`` must equal
  ``sum_panels (e^T A_panel) B_panel``, computed in float64 from the DRAM
  operands at ``O(K x nc)`` cost (vs ``O(mc x K x nc)`` for the GEMM
  itself).  Catches staging and accumulator corruption.
* **Reduction checksum** — the weighted kernel-row-sum mass
  ``sum_ij K_ij w_j`` (float64, straight from the register-resident
  ``Kblk``) must match the committed ``sum_i partialV[i]``.  Catches
  corruption of the three-level reduction and the atomic commit.

A CTA whose checks fail is *selectively re-executed* (bounded by
``max_retries``); if the retries are exhausted the whole call degrades
gracefully to the reference implementation and emits a structured
:class:`repro.errors.DegradedResultWarning` instead of raising.  With
injection disabled and ``abft=False`` the code path performs the exact
pre-ABFT arithmetic, bit for bit.

Execution engines (``engine=``)
-------------------------------
Two paths produce bit-identical results (see docs/PERFORMANCE.md):

* ``"loop"`` — the per-CTA Python loop above.  This is the only path that
  supports ABFT and fault injection (both are *per-CTA* mechanisms), and
  the one that emits per-CTA ``fused.cta`` spans under tracing.
* ``"batched"`` — row chunks of the output are processed full-width with
  preallocated buffers: one ``(rows x kc) @ (kc x Np)`` BLAS call per
  k-panel, in-place kernel evaluation, a vectorized microtile row-sum, and
  the explicit tx-order intra-CTA add loop.  The k-panel order, every
  elementwise operation order, the 8-element microtile reduction tree, and
  the per-row inter-CTA commit order are all preserved exactly, so float32
  bits match the loop path (enforced by the parametrized bit-identity test
  matrix in ``tests/core/test_batched_engine.py``).

``engine="auto"`` (the default) selects the batched path whenever no fault
injector is active and ``abft=False``, and falls back to the loop path
otherwise; :attr:`FusedKernelSummation.last_engine` records the decision.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

import numpy as np

from ..errors import DegradedResultWarning, InvalidProblemError
from ..faults.injector import FaultInjector, active_injector
from ..faults.spec import FaultSpec
from ..obs.log import get_logger, log_event
from ..obs.metrics import counter_inc
from ..obs.tracer import span
from .kernels import get_kernel
from .problem import ProblemData
from .tiling import PAPER_TILING, TilingConfig

__all__ = [
    "AbftReport",
    "CtaDetection",
    "FusedKernelSummation",
    "fused_kernel_summation",
    "microtile_reduce_plan",
]

CtaOrder = Literal["rowmajor", "colmajor", "shuffled"]
Engine = Literal["auto", "batched", "loop"]

_log = get_logger("core.fused")

#: memoised probe results: does the explicit pairs tree reproduce NumPy's
#: 8-element last-axis reduction bit for bit on this build?
_PAIRS_TREE_OK: dict = {}


def _pairs_tree_matches(dt: np.dtype) -> bool:
    """Probe whether ``((a0+a1)+(a2+a3))+((a4+a5)+(a6+a7)) == a.sum(-1)``.

    NumPy's pairwise summation reduces a contiguous length-8 axis with this
    exact tree on every build we know of, but the batched engine must not
    *assume* so — a mismatch silently breaks the bit-identity contract.  A
    cheap one-time probe per dtype decides between the fast strided tree
    and a plain ``.sum`` fallback.
    """
    key = str(dt)
    if key not in _PAIRS_TREE_OK:
        g = np.sin(np.arange(3 * 5 * 8, dtype=np.float64) * 1.7).astype(dt)
        g = (g * dt.type(3.0)).reshape(3, 5, 8)
        t4 = g[..., 0::2] + g[..., 1::2]
        t2 = t4[..., 0::2] + t4[..., 1::2]
        tree = t2[..., 0] + t2[..., 1]
        _PAIRS_TREE_OK[key] = bool(np.array_equal(tree, g.sum(axis=2, dtype=g.dtype)))
    return _PAIRS_TREE_OK[key]


#: memoised probe results for the sequential left-fold strategy
_SEQ_FOLD_OK: dict = {}


def _seq_fold_matches(n: int, dt: np.dtype) -> bool:
    """Probe whether ``(((a0+a1)+a2)+...)+a(n-1) == a.sum(-1)`` for length n."""
    key = (n, str(dt))
    if key not in _SEQ_FOLD_OK:
        g = np.sin(np.arange(3 * 5 * n, dtype=np.float64) * 1.3).astype(dt)
        g = (g * dt.type(3.0)).reshape(3, 5, n)
        r = g[..., 0].copy()
        for i in range(1, n):
            r = r + g[..., i]
        _SEQ_FOLD_OK[key] = bool(np.array_equal(r, g.sum(axis=2, dtype=g.dtype)))
    return _SEQ_FOLD_OK[key]


#: resolved (micro_n, dtype) -> plan strings, shared across instances so a
#: burst of small batched solves (the fast engine's near field) resolves
#: each shape once per process instead of re-running the probe ladder
_REDUCE_PLANS: dict = {}


def _microtile_reduce_plan(micro_n: int, dt: np.dtype) -> str:
    """Fastest strided strategy that reproduces ``.sum(axis=-1)`` exactly.

    NumPy reduces a contiguous length-8 axis with the pairs tree and
    shorter axes with a sequential fold; both are replayable as a handful
    of strided ``np.add`` calls, which is several times faster than the
    generic reduction machinery.  Anything the probes cannot confirm falls
    back to ``.sum`` itself — slower, but trivially bit-identical.
    """
    key = (micro_n, str(dt))
    hit = _REDUCE_PLANS.get(key)
    if hit is not None:
        return hit
    if micro_n == 1:
        plan = "copy"
    elif micro_n == 8 and _pairs_tree_matches(dt):
        plan = "tree8"
    elif micro_n < 8 and _seq_fold_matches(micro_n, dt):
        plan = "seq"
    else:
        plan = "sum"
    _REDUCE_PLANS[key] = plan
    return plan


def microtile_reduce_plan(micro_n: int, dt: np.dtype) -> str:
    """Resolved microtile reduce plan for this shape and dtype.

    Public accessor for the probe-ladder result ("copy" | "tree8" | "seq"
    | "sum") — the accuracy certifier (:mod:`repro.analysis.fpcert`) walks
    the same plan the batched engine will execute, so its per-level
    operation counts describe the real reduction tree, not an assumption.
    """
    return _microtile_reduce_plan(micro_n, np.dtype(dt))


def _auto_chunk_rows(Np: int, itemsize: int, budget_bytes: int = 1 << 20) -> int:
    """Row-chunk height keeping the working buffers L2-resident.

    Three ``(rows, Np)`` buffers are live per chunk (accumulator, scratch,
    and the A row slice); the budget targets the host L2 so the chunked
    passes stream from cache rather than DRAM.
    """
    rows = budget_bytes // max(1, 3 * Np * itemsize)
    return max(16, min(4096, int(rows)))


@dataclass(frozen=True)
class CtaDetection:
    """One failed verification: which CTA, which attempt, which checks."""

    cta: Tuple[int, int]
    attempt: int
    checks: Tuple[str, ...]


@dataclass
class AbftReport:
    """What the ABFT layer saw during one fused call."""

    abft: bool
    ctas: int = 0
    retries: int = 0
    detections: List[CtaDetection] = field(default_factory=list)
    degraded: bool = False
    degraded_cta: Optional[Tuple[int, int]] = None

    @property
    def detected(self) -> bool:
        """Did any checksum flag a corruption?"""
        return bool(self.detections)


class FusedKernelSummation:
    """Callable implementing Algorithm 2 over NumPy tiles."""

    def __init__(
        self,
        tiling: TilingConfig = PAPER_TILING,
        cta_order: CtaOrder = "rowmajor",
        seed: int = 0,
        abft: bool = False,
        fault_spec: Optional[FaultSpec] = None,
        max_retries: int = 2,
        abft_rtol: Optional[float] = None,
        engine: Engine = "auto",
        chunk_rows: Optional[int] = None,
    ) -> None:
        if cta_order not in ("rowmajor", "colmajor", "shuffled"):
            raise InvalidProblemError(f"unknown cta_order {cta_order!r}")
        if max_retries < 0:
            raise InvalidProblemError("max_retries cannot be negative")
        if engine not in ("auto", "batched", "loop"):
            raise InvalidProblemError(
                f"unknown engine {engine!r}; use auto | batched | loop"
            )
        if chunk_rows is not None and chunk_rows < 1:
            raise InvalidProblemError("chunk_rows must be positive")
        self.tiling = tiling
        self.cta_order = cta_order
        self.seed = seed
        self.abft = abft
        self.fault_spec = fault_spec
        self.max_retries = max_retries
        self.abft_rtol = abft_rtol
        self.engine = engine
        self.chunk_rows = chunk_rows
        #: engine the most recent run dispatched to ("batched" or "loop")
        self.last_engine: Optional[str] = None

    def _cta_sequence(self, grid_x: int, grid_y: int) -> list[tuple[int, int]]:
        if self.cta_order == "colmajor":
            return [(bx, by) for bx in range(grid_x) for by in range(grid_y)]
        ctas = [(bx, by) for by in range(grid_y) for bx in range(grid_x)]
        if self.cta_order == "shuffled":
            rng = np.random.default_rng(self.seed)
            rng.shuffle(ctas)
        return ctas

    def _abft_rtols(self, dtype: np.dtype, K: int) -> tuple[float, float]:
        """(gemm, reduction) relative checksum tolerances.

        An explicit ``abft_rtol`` override applies to both checks;
        otherwise the tolerances are *derived* from the certified
        rounding-error bounds of this tiling at this K
        (:func:`repro.analysis.fpcert.abft_tolerances`) — worst-case
        separations between the data-dtype compute and the float64
        prediction, with headroom, so a clean run can never trip them.
        """
        if self.abft_rtol is not None:
            return self.abft_rtol, self.abft_rtol
        # local import to avoid a cycle at module load (analysis.fpcert
        # imports this module for the reduce-plan metadata)
        from ..analysis.fpcert import abft_tolerances

        tols = abft_tolerances(str(dtype), K, self.tiling)
        return tols.gemm_rtol, tols.reduce_rtol

    def __call__(self, data: ProblemData) -> np.ndarray:
        return self.run_with_stats(data)[0]

    def run_with_stats(self, data: ProblemData) -> tuple[np.ndarray, AbftReport]:
        """Run the fused kernel; also return the ABFT bookkeeping.

        The report is meaningful with ``abft=True`` (detections, retries,
        degradation); on a plain run it only carries the CTA count.
        """
        spec = data.spec
        t = self.tiling
        dt = spec.np_dtype
        kf = get_kernel(spec.kernel)
        # explicit spec wins over an ambient fault_injection() context
        inj = (
            FaultInjector(self.fault_spec)
            if self.fault_spec is not None
            else active_injector()
        )
        report = AbftReport(abft=self.abft)

        # --- norms kernel (one lightweight launch before the fused kernel) --
        norm_a = data.source_norms  # (M,)
        norm_b = data.target_norms  # (N,)

        # --- pad to the CTA grid --------------------------------------------
        from .gemm import pad_to_tiles, pad_vector  # local import to avoid cycle at module load

        Ap = pad_to_tiles(data.A, t.mc, t.kc)
        Bp = pad_to_tiles(data.B, t.kc, t.nc)
        Wp = pad_vector(data.W, t.nc)
        na = pad_vector(norm_a, t.mc)
        nb = pad_vector(norm_b, t.nc)
        Mp, Kp = Ap.shape
        _, Np = Bp.shape
        grid_x, grid_y = Np // t.nc, Mp // t.mc
        k_iters = Kp // t.kc

        # injection site "dram": the operands as resident in device memory.
        # The corruption persists across CTA re-executions and feeds the
        # checksum predictions too — the silent case ABFT cannot catch.
        if inj is not None:
            Ap = inj.corrupt_array("dram", Ap, where="A")
            Bp = inj.corrupt_array("dram", Bp, where="B")

        # ABFT and fault injection are per-CTA mechanisms: only the loop
        # engine can run them.
        if self.engine == "batched" and (self.abft or inj is not None):
            raise InvalidProblemError(
                "engine='batched' cannot run with ABFT or fault injection "
                "(per-CTA mechanisms); use engine='auto' or engine='loop'"
            )
        use_batched = self.engine != "loop" and not self.abft and inj is None
        self.last_engine = "batched" if use_batched else "loop"

        # Padded target columns must not contribute: zero-padded B columns
        # have zero norm and distance ||a||^2, which the kernel maps to a
        # nonzero value — mask them via zero weights (Wp pads with zeros).
        V = np.zeros(Mp, dtype=dt)
        rtols = self._abft_rtols(dt, spec.K) if self.abft else (0.0, 0.0)

        if use_batched:
            report.ctas = grid_x * grid_y
            with span(
                "fused.run",
                M=spec.M, N=spec.N, K=spec.K,
                grid_x=grid_x, grid_y=grid_y, abft=False, engine="batched",
            ):
                self._run_batched(
                    Ap, Bp, Wp, na, nb, kf, spec.h, dt, V,
                    grid_x, grid_y, k_iters,
                )
            return V[: spec.M], report

        with span(
            "fused.run",
            M=spec.M, N=spec.N, K=spec.K,
            grid_x=grid_x, grid_y=grid_y, abft=self.abft,
        ):
            for bx, by in self._cta_sequence(grid_x, grid_y):
                report.ctas += 1
                r0, r1 = by * t.mc, (by + 1) * t.mc
                c0, c1 = bx * t.nc, (bx + 1) * t.nc

                with span("fused.cta", bx=bx, by=by):
                    for attempt in range(self.max_retries + 1):
                        delta, failed = self._cta_attempt(
                            Ap, Bp, Wp, na, nb, kf, spec.h, dt,
                            (bx, by), (r0, r1, c0, c1), k_iters, inj, rtols,
                        )
                        if not failed:
                            break
                        report.detections.append(
                            CtaDetection((bx, by), attempt, tuple(failed))
                        )
                        counter_inc("faults.abft.detections")
                        log_event(
                            _log, logging.INFO, "abft_detected",
                            cta=f"({bx},{by})", attempt=attempt,
                            checks=",".join(failed),
                        )
                        if attempt < self.max_retries:
                            report.retries += 1
                            counter_inc("faults.abft.retries")
                    else:
                        # retries exhausted: degrade to the unfused reference
                        # path, which keeps its intermediate in host memory
                        # and is outside every injection site
                        report.degraded = True
                        report.degraded_cta = (bx, by)
                        counter_inc("faults.abft.degraded")
                        log_event(
                            _log, logging.INFO, "abft_degraded",
                            cta=f"({bx},{by})",
                            attempts=self.max_retries + 1,
                            checks=",".join(failed),
                        )
                        warnings.warn(
                            DegradedResultWarning(
                                f"ABFT retries exhausted on CTA ({bx}, {by}) after "
                                f"{self.max_retries + 1} attempts "
                                f"(checks failed: {', '.join(failed)}); "
                                "returning the reference result",
                                cta=(bx, by),
                                attempts=self.max_retries + 1,
                            ),
                            stacklevel=2,
                        )
                        from .reference import expanded

                        with span("fused.degraded_reference"):
                            return expanded(data), report

                # Inter-CTA reduction (line 21): atomicAdd into the result.
                with span("fused.reduce.inter_cta", bx=bx, by=by):
                    V[r0:r1] += delta

        return V[: spec.M], report

    def _run_batched(
        self,
        Ap: np.ndarray,
        Bp: np.ndarray,
        Wp: np.ndarray,
        na: np.ndarray,
        nb: np.ndarray,
        kf,
        h: float,
        dt: np.dtype,
        V: np.ndarray,
        grid_x: int,
        grid_y: int,
        k_iters: int,
    ) -> None:
        """The batched engine: row-chunked, full-width, buffer-reusing.

        Bit-identity with the per-CTA loop holds stage by stage:

        * **GEMM** — each output element accumulates the same rank-``kc``
          panel products in the same order; a BLAS dot product's bits do
          not depend on how the surrounding output is blocked.
        * **kernel eval** — the same elementwise expression, replayed with
          ``out=`` ufunc calls in the identical operation order.
        * **intra-thread** — the contiguous ``micro_n`` row-sum uses
          NumPy's own length-8 pairwise tree (probed, with a ``.sum``
          fallback), exactly what ``gamma.sum(axis=2)`` does per CTA.
        * **intra-CTA** — the explicit tx-order add loop, vectorized over
          rows and CTA columns (elementwise adds are shape-independent).
        * **inter-CTA** — per output row, both ``rowmajor`` and
          ``colmajor`` sequences commit CTA columns in ascending ``bx``
          order, so one add loop over ``bx`` serves both; ``shuffled``
          replays each row block's actual ``bx`` order from the sequence.
        """
        t = self.tiling
        Mp = Ap.shape[0]
        Np = Bp.shape[1]
        threads_x = grid_x * t.block_dim_x
        chunk = min(self.chunk_rows or _auto_chunk_rows(Np, dt.itemsize), Mp)

        acc = np.empty((chunk, Np), dtype=dt)
        tmp = np.empty_like(acc)
        tp = np.empty((chunk, threads_x), dtype=dt)
        part = np.empty((chunk, grid_x), dtype=dt)
        plan = _microtile_reduce_plan(t.micro_n, dt)
        if plan == "tree8":
            t4 = np.empty((chunk, threads_x, 4), dtype=dt)
            t2 = np.empty((chunk, threads_x, 2), dtype=dt)

        bx_orders = None
        if self.cta_order == "shuffled":
            bx_orders: list[list[int]] = [[] for _ in range(grid_y)]
            for bx, by in self._cta_sequence(grid_x, grid_y):
                bx_orders[by].append(bx)

        two = dt.type(2.0)
        for r0 in range(0, Mp, chunk):
            r1 = min(r0 + chunk, Mp)
            R = r1 - r0
            a, b, tpv, pv = acc[:R], tmp[:R], tp[:R], part[:R]

            with span("fused.gemm", k_iters=k_iters, r0=r0, rows=R):
                a[...] = 0
                for ki in range(k_iters):
                    k0, k1 = ki * t.kc, (ki + 1) * t.kc
                    with span("fused.gemm.kpanel", ki=ki):
                        np.matmul(Ap[r0:r1, k0:k1], Bp[k0:k1, :], out=b)
                        np.add(a, b, out=a)

            with span("fused.kernel_eval", r0=r0, rows=R):
                np.multiply(two, a, out=b)           # 2 * subC
                np.add(na[r0:r1, None], nb[None, :], out=a)
                np.subtract(a, b, out=a)             # squared distances
                kf.evaluate_inplace(a, h, scratch=b)  # Kblk, in place

            with span("fused.reduce.intra_thread", r0=r0, rows=R):
                np.multiply(a, Wp[None, :], out=a)   # gamma = Kblk * W
                g = a.reshape(R, threads_x, t.micro_n)
                if plan == "tree8":
                    np.add(g[:, :, 0::2], g[:, :, 1::2], out=t4[:R])
                    np.add(t4[:R, :, 0::2], t4[:R, :, 1::2], out=t2[:R])
                    np.add(t2[:R, :, 0], t2[:R, :, 1], out=tpv)
                elif plan == "seq":
                    np.add(g[:, :, 0], g[:, :, 1], out=tpv)
                    for i in range(2, t.micro_n):
                        np.add(tpv, g[:, :, i], out=tpv)
                elif plan == "copy":
                    np.copyto(tpv, g[:, :, 0])
                else:
                    g.sum(axis=2, dtype=dt, out=tpv)

            with span("fused.reduce.intra_cta", r0=r0, rows=R):
                tp3 = tpv.reshape(R, grid_x, t.block_dim_x)
                pv[...] = 0
                for tx in range(t.block_dim_x):
                    np.add(pv, tp3[:, :, tx], out=pv)

            with span("fused.reduce.inter_cta", r0=r0, rows=R):
                if bx_orders is None:
                    for bx in range(grid_x):
                        np.add(V[r0:r1], pv[:, bx], out=V[r0:r1])
                else:
                    rr = r0
                    while rr < r1:
                        by = rr // t.mc
                        seg = min(r1, (by + 1) * t.mc)
                        lo, hi = rr - r0, seg - r0
                        for bx in bx_orders[by]:
                            np.add(V[rr:seg], pv[lo:hi, bx], out=V[rr:seg])
                        rr = seg

    def _cta_attempt(
        self,
        Ap: np.ndarray,
        Bp: np.ndarray,
        Wp: np.ndarray,
        na: np.ndarray,
        nb: np.ndarray,
        kf,
        h: float,
        dt: np.dtype,
        cta: Tuple[int, int],
        bounds: Tuple[int, int, int, int],
        k_iters: int,
        inj: Optional[FaultInjector],
        rtols: Tuple[float, float],
    ) -> tuple[np.ndarray, list[str]]:
        """One execution of one CTA; returns (partial V slice, failed checks).

        With ``inj is None`` and zero tolerances this performs exactly the
        pre-ABFT arithmetic in exactly the original order — no staging
        copies, no checksums — so clean results stay bit-identical.
        """
        t = self.tiling
        r0, r1, c0, c1 = bounds
        rtol_gemm, rtol_reduce = rtols
        check = rtol_gemm > 0.0 or rtol_reduce > 0.0
        failed: list[str] = []
        where = f"cta({cta[0]},{cta[1]})"

        # GEMM portion: rank-kc updates, double-buffered on hardware.
        subC = np.zeros((t.mc, t.nc), dtype=dt)
        if check:
            pred_colsum = np.zeros(t.nc, dtype=np.float64)
            scale_colsum = np.zeros(t.nc, dtype=np.float64)
        with span("fused.gemm", k_iters=k_iters):
            for ki in range(k_iters):
                k0, k1 = ki * t.kc, (ki + 1) * t.kc
                a_panel = Ap[r0:r1, k0:k1]
                b_panel = Bp[k0:k1, c0:c1]
                if check:
                    # checksum prediction straight from the DRAM operands,
                    # independent of the staged copies the compute consumes
                    b64 = b_panel.astype(np.float64)
                    pred_colsum += a_panel.sum(axis=0, dtype=np.float64) @ b64
                    scale_colsum += np.abs(a_panel).sum(axis=0, dtype=np.float64) @ np.abs(b64)
                if inj is not None:
                    # injection site "smem": the staged shared-memory copies
                    a_panel = inj.corrupt_array("smem", a_panel, where=f"{where}/tileA{ki}")
                    b_panel = inj.corrupt_array("smem", b_panel, where=f"{where}/tileB{ki}")
                with span("fused.gemm.kpanel", ki=ki):
                    subC += a_panel @ b_panel

        if inj is not None:
            # injection site "accumulator": the register-resident microtiles
            subC = inj.corrupt_array("accumulator", subC, where=where)

        if check:
            actual_colsum = subC.sum(axis=0, dtype=np.float64)
            tol = rtol_gemm * np.maximum(scale_colsum, 1.0)
            if np.any(np.abs(actual_colsum - pred_colsum) > tol):
                failed.append("gemm-colsum")

        # Kernel evaluation straight out of "registers" (line 14).
        with span("fused.kernel_eval"):
            sq = na[r0:r1, None] + nb[None, c0:c1] - dt.type(2.0) * subC
            Kblk = kf.evaluate(sq, h)

        # Intra-thread reduction (line 16): thread (tx, ty) row-sums its
        # 8 x 8 microtile against its 8 weights.  Equivalent reshaping:
        with span("fused.reduce.intra_thread"):
            gamma = (Kblk * Wp[None, c0:c1]).reshape(t.mc, t.block_dim_x, t.micro_n)
            thread_partials = gamma.sum(axis=2, dtype=dt)  # (mc, 16)

        # Intra-CTA reduction (line 20): one thread per row sums the 16
        # partials sequentially in tx order.
        with span("fused.reduce.intra_cta"):
            partialV = np.zeros(t.mc, dtype=dt)
            for tx in range(t.block_dim_x):
                partialV += thread_partials[:, tx]

        if check:
            # weighted kernel-mass checksum for the reduction + commit:
            # computed in float64 from the register-resident Kblk, before
            # anything downstream can corrupt it
            w_slice = Wp[c0:c1].astype(np.float64)
            s_pred = float((Kblk.astype(np.float64) * w_slice[None, :]).sum())
            l1_mass = float((np.abs(Kblk).astype(np.float64) * np.abs(w_slice)[None, :]).sum())

        if inj is not None:
            # injection site "atomic": the 128-word partial commit
            partialV = inj.corrupt_array("atomic", partialV, where=where)

        if check:
            s_act = float(partialV.sum(dtype=np.float64))
            if abs(s_act - s_pred) > rtol_reduce * max(l1_mass, 1.0):
                failed.append("reduction-sum")

        return partialV, failed


def fused_kernel_summation(
    data: ProblemData,
    tiling: TilingConfig = PAPER_TILING,
    cta_order: CtaOrder = "rowmajor",
    seed: int = 0,
    abft: bool = False,
    fault_spec: Optional[FaultSpec] = None,
    max_retries: int = 2,
    engine: Engine = "auto",
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FusedKernelSummation`."""
    return FusedKernelSummation(
        tiling, cta_order, seed,
        abft=abft, fault_spec=fault_spec, max_retries=max_retries,
        engine=engine,
    )(data)
