"""Fused kernel summation (the paper's Algorithm 2), functional layer.

Every CTA ``(bx, by)`` of the GEMM grid:

1. accumulates its 128 x 128 ``subC`` through the rank-8 panel loop
   (double-buffered on the GPU; arithmetic-order-identical here);
2. applies the kernel function to
   ``||a||^2 + ||b||^2 - 2 subC`` entirely out of registers;
3. reduces in three levels — intra-thread (each thread row-sums its 8 x 8
   microtile against its weight slice), intra-CTA (the 16 thread partials of
   each row are summed in thread order), inter-CTA (each CTA ``atomicAdd``-s
   its 128-element ``partialV`` into ``V``).

The inter-CTA atomic order is *not deterministic on hardware*; float32
addition is not associative, so the paper's kernel returns slightly
different bits run to run.  :class:`FusedKernelSummation` exposes that
through ``cta_order``: ``"rowmajor"`` (deterministic default),
``"colmajor"``, or ``"shuffled"`` with a seed — tests use this to bound the
non-determinism instead of pretending it away.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .kernels import get_kernel
from .problem import ProblemData
from .tiling import PAPER_TILING, TilingConfig

__all__ = ["FusedKernelSummation", "fused_kernel_summation"]

CtaOrder = Literal["rowmajor", "colmajor", "shuffled"]


class FusedKernelSummation:
    """Callable implementing Algorithm 2 over NumPy tiles."""

    def __init__(
        self,
        tiling: TilingConfig = PAPER_TILING,
        cta_order: CtaOrder = "rowmajor",
        seed: int = 0,
    ) -> None:
        if cta_order not in ("rowmajor", "colmajor", "shuffled"):
            raise ValueError(f"unknown cta_order {cta_order!r}")
        self.tiling = tiling
        self.cta_order = cta_order
        self.seed = seed

    def _cta_sequence(self, grid_x: int, grid_y: int) -> list[tuple[int, int]]:
        ctas = [(bx, by) for by in range(grid_y) for bx in range(grid_x)]
        if self.cta_order == "colmajor":
            ctas.sort(key=lambda c: (c[0], c[1]))
        elif self.cta_order == "shuffled":
            rng = np.random.default_rng(self.seed)
            rng.shuffle(ctas)
        return ctas

    def __call__(self, data: ProblemData) -> np.ndarray:
        spec = data.spec
        t = self.tiling
        dt = spec.np_dtype
        kf = get_kernel(spec.kernel)

        # --- norms kernel (one lightweight launch before the fused kernel) --
        norm_a = data.source_norms  # (M,)
        norm_b = data.target_norms  # (N,)

        # --- pad to the CTA grid --------------------------------------------
        from .gemm import pad_to_tiles  # local import to avoid cycle at module load

        Ap = pad_to_tiles(data.A, t.mc, t.kc)
        Bp = pad_to_tiles(data.B, t.kc, t.nc)
        Wp = np.pad(data.W, (0, (-spec.N) % t.nc))
        na = np.pad(norm_a, (0, (-spec.M) % t.mc))
        nb = np.pad(norm_b, (0, (-spec.N) % t.nc))
        Mp, Kp = Ap.shape
        _, Np = Bp.shape
        grid_x, grid_y = Np // t.nc, Mp // t.mc
        k_iters = Kp // t.kc

        # Padded target columns must not contribute: zero-padded B columns
        # have zero norm and distance ||a||^2, which the kernel maps to a
        # nonzero value — mask them via zero weights (Wp pads with zeros).
        V = np.zeros(Mp, dtype=dt)

        for bx, by in self._cta_sequence(grid_x, grid_y):
            r0, r1 = by * t.mc, (by + 1) * t.mc
            c0, c1 = bx * t.nc, (bx + 1) * t.nc

            # GEMM portion: rank-kc updates, double-buffered on hardware.
            subC = np.zeros((t.mc, t.nc), dtype=dt)
            for ki in range(k_iters):
                k0, k1 = ki * t.kc, (ki + 1) * t.kc
                subC += Ap[r0:r1, k0:k1] @ Bp[k0:k1, c0:c1]

            # Kernel evaluation straight out of "registers" (line 14).
            sq = na[r0:r1, None] + nb[None, c0:c1] - dt.type(2.0) * subC
            Kblk = kf.evaluate(sq, spec.h)

            # Intra-thread reduction (line 16): thread (tx, ty) row-sums its
            # 8 x 8 microtile against its 8 weights.  Equivalent reshaping:
            gamma = (Kblk * Wp[None, c0:c1]).reshape(t.mc, t.block_dim_x, t.micro_n)
            thread_partials = gamma.sum(axis=2, dtype=dt)  # (mc, 16)

            # Intra-CTA reduction (line 20): one thread per row sums the 16
            # partials sequentially in tx order.
            partialV = np.zeros(t.mc, dtype=dt)
            for tx in range(t.block_dim_x):
                partialV += thread_partials[:, tx]

            # Inter-CTA reduction (line 21): atomicAdd into the result.
            V[r0:r1] += partialV

        return V[: spec.M]


def fused_kernel_summation(
    data: ProblemData,
    tiling: TilingConfig = PAPER_TILING,
    cta_order: CtaOrder = "rowmajor",
    seed: int = 0,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FusedKernelSummation`."""
    return FusedKernelSummation(tiling, cta_order, seed)(data)
