"""Kernel functions and their cost signatures.

The paper evaluates the Gaussian kernel (its equation 1); section VI notes
the fusion scheme applies to other kernels unchanged, because every kernel
here is a pointwise function of the squared Euclidean distance computed by
the GEMM expansion.  The registry therefore exposes additional standard
kernels (reciprocal-distance/Laplace, polynomial, Matérn-3/2) as the
"future work" extension.

Each :class:`KernelFunction` provides:

* :meth:`evaluate` — vectorized evaluation on an array of squared distances
  (clamped at zero: float32 cancellation in ``|a|^2+|b|^2-2ab`` can produce
  tiny negatives, which the GPU code tolerates because ``exp`` is total but
  ``sqrt`` is not);
* :meth:`evaluate_inplace` — the same arithmetic written into the input
  buffer with ``out=`` ufunc calls, used by the batched execution engine to
  avoid allocating the large intermediates; each in-place body replays the
  out-of-place expression operation by operation, so the results are
  bit-identical (see docs/PERFORMANCE.md);
* a per-element flop/SFU cost used by the instruction-count model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import InvalidProblemError, UnknownKernelError

__all__ = ["KernelFunction", "KERNELS", "get_kernel"]


@dataclass(frozen=True)
class KernelFunction:
    """A pointwise kernel of the squared distance.

    ``fma_flops_per_element`` counts FP32-core operations per matrix element
    and ``sfu_ops_per_element`` counts special-function (MUFU) operations;
    both feed the fused/unfused instruction models.
    """

    name: str
    fn: Callable[[np.ndarray, float], np.ndarray]
    fma_flops_per_element: int
    sfu_ops_per_element: int
    #: optional allocation-free body: ``fn_inplace(sq, h, scratch)`` must
    #: overwrite ``sq`` with the kernel value using the exact operation
    #: sequence of ``fn`` (same ufuncs, same operand order), so the bits
    #: match the out-of-place path
    fn_inplace: Optional[Callable[[np.ndarray, float, Optional[np.ndarray]], np.ndarray]] = None

    def evaluate(self, sqdist: np.ndarray, h: float) -> np.ndarray:
        """Evaluate on squared distances, clamping negatives from cancellation."""
        if h <= 0:
            raise InvalidProblemError("bandwidth h must be positive")
        sq = np.maximum(sqdist, np.asarray(0, dtype=sqdist.dtype))
        return self.fn(sq, h)

    def evaluate_inplace(
        self, sqdist: np.ndarray, h: float, scratch: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evaluate into ``sqdist`` itself; returns the overwritten array.

        ``scratch`` is an optional same-shape buffer for kernels that need a
        second intermediate (Matérn).  Falls back to the out-of-place body
        (plus a copy) for kernels without an in-place form — bit-identical
        either way.
        """
        if h <= 0:
            raise InvalidProblemError("bandwidth h must be positive")
        np.maximum(sqdist, np.asarray(0, dtype=sqdist.dtype), out=sqdist)
        if self.fn_inplace is None:
            np.copyto(sqdist, self.fn(sqdist, h))
            return sqdist
        return self.fn_inplace(sqdist, h, scratch)


def _gaussian(sq: np.ndarray, h: float) -> np.ndarray:
    dt = sq.dtype
    return np.exp(-sq / dt.type(2.0 * h * h)).astype(dt, copy=False)


def _laplace(sq: np.ndarray, h: float) -> np.ndarray:
    # Reciprocal-distance (3D Laplace potential) kernel with softening h to
    # keep the self-interaction finite, as N-body codes do.
    dt = sq.dtype
    return (dt.type(1.0) / np.sqrt(sq + dt.type(h * h))).astype(dt, copy=False)


def _polynomial(sq: np.ndarray, h: float) -> np.ndarray:
    # Inverse multiquadric-style polynomial kernel: (1 + r^2/h^2)^-1.
    dt = sq.dtype
    return (dt.type(1.0) / (dt.type(1.0) + sq / dt.type(h * h))).astype(dt, copy=False)


def _matern32(sq: np.ndarray, h: float) -> np.ndarray:
    dt = sq.dtype
    r = np.sqrt(sq) / dt.type(h)
    c = dt.type(np.sqrt(3.0))
    return ((dt.type(1.0) + c * r) * np.exp(-c * r)).astype(dt, copy=False)


# In-place bodies.  Each replays its out-of-place expression one ufunc at a
# time; unary negation/commuted multiplies are exact in IEEE arithmetic, so
# e.g. ``np.negative`` + ``np.divide`` reproduces ``-sq / c`` bit for bit.

def _gaussian_inplace(sq: np.ndarray, h: float, scratch=None) -> np.ndarray:
    dt = sq.dtype
    np.negative(sq, out=sq)
    np.divide(sq, dt.type(2.0 * h * h), out=sq)
    np.exp(sq, out=sq)
    return sq


def _laplace_inplace(sq: np.ndarray, h: float, scratch=None) -> np.ndarray:
    dt = sq.dtype
    np.add(sq, dt.type(h * h), out=sq)
    np.sqrt(sq, out=sq)
    np.divide(dt.type(1.0), sq, out=sq)
    return sq


def _polynomial_inplace(sq: np.ndarray, h: float, scratch=None) -> np.ndarray:
    dt = sq.dtype
    np.divide(sq, dt.type(h * h), out=sq)
    np.add(dt.type(1.0), sq, out=sq)
    np.divide(dt.type(1.0), sq, out=sq)
    return sq


def _matern32_inplace(sq: np.ndarray, h: float, scratch=None) -> np.ndarray:
    dt = sq.dtype
    if scratch is None or scratch.shape != sq.shape or scratch.dtype != dt:
        scratch = np.empty_like(sq)
    np.sqrt(sq, out=sq)
    np.divide(sq, dt.type(h), out=sq)            # r
    np.multiply(dt.type(np.sqrt(3.0)), sq, out=sq)  # c*r
    np.negative(sq, out=scratch)                 # -(c*r) == (-c)*r exactly
    np.exp(scratch, out=scratch)
    np.add(dt.type(1.0), sq, out=sq)             # 1 + c*r
    np.multiply(sq, scratch, out=sq)
    return sq


KERNELS: Dict[str, KernelFunction] = {
    k.name: k
    for k in [
        # exp lowers to FMUL (scale) + MUFU.EX2; the subtract/scale of the
        # exponent argument costs 2 more core flops.
        KernelFunction("gaussian", _gaussian, fma_flops_per_element=3, sfu_ops_per_element=1,
                       fn_inplace=_gaussian_inplace),
        # add softening + MUFU.RSQ
        KernelFunction("laplace", _laplace, fma_flops_per_element=2, sfu_ops_per_element=1,
                       fn_inplace=_laplace_inplace),
        # add + divide (MUFU.RCP)
        KernelFunction("polynomial", _polynomial, fma_flops_per_element=2, sfu_ops_per_element=1,
                       fn_inplace=_polynomial_inplace),
        # sqrt + exp + polynomial factor
        KernelFunction("matern32", _matern32, fma_flops_per_element=4, sfu_ops_per_element=2,
                       fn_inplace=_matern32_inplace),
    ]
}


def get_kernel(name: str) -> KernelFunction:
    """Look up a kernel by registry name."""
    if name not in KERNELS:
        raise UnknownKernelError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        )
    return KERNELS[name]
