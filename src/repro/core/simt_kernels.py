"""Cooperative kernels executed on the SIMT interpreter.

These run the *actual* staging and reduction code paths of the fused kernel
on :class:`repro.gpu.simt.Block` with 256 real threads, so the claims the
analytical model takes as inputs (Fig.-5 staging is conflict-free; the
three-level reduction with per-lane atomics is correct) are demonstrated by
execution, not assumed.

They are deliberately small (one CTA, one k-panel) — the functional layer
in :mod:`repro.core.fused` covers full problems; these cover the warp-level
mechanics the NumPy formulation abstracts away.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..faults.injector import active_injector
from ..gpu.simt import Block, BlockRunStats, ThreadCtx
from .mapping import compute_load_addresses, store_assignment

__all__ = [
    "stage_tile_kernel",
    "run_stage_and_multiply",
    "block_reduce_kernel",
    "run_block_reduction",
    "warp_shuffle_reduce_kernel",
    "run_warp_shuffle_reduction",
    "fused_cta_kernel",
    "run_fused_cta",
    "evalsum_cta_kernel",
    "run_evalsum_cta",
    "double_buffered_gemm_kernel",
    "run_double_buffered_gemm",
]


def stage_tile_kernel(
    ctx: ThreadCtx,
    tileA: np.ndarray,
    tileB: np.ndarray,
    acc: np.ndarray,
    layout: Literal["optimized", "naive"],
    kc: int,
):
    """One CTA's k-panel: stage both tiles, barrier, rank-kc update.

    ``tileA`` is (128, kc) — one track per row; ``tileB`` is (kc, 128) —
    one track per column.  ``acc`` is the (128, 128) accumulator the block
    updates in place (each thread owns its 8 x 8 microtile).  tileA lives
    at shared-word offset 0, tileB at offset 1024.
    """
    B_OFF = 128 * kc
    half = ctx.block_dim[0] * ctx.block_dim[1] // 2
    tid = ctx.tid

    # --- staging: first half loads tileA, second half loads tileB --------
    if tid < half:
        assign = store_assignment(tid, layout, kc)
        track = tileA[assign.point, :]  # contiguous row of A
        for p in range(kc):
            yield ctx.sts(assign.smem_addresses[p], [track[p]])
    else:
        assign = store_assignment(tid - half, layout, kc)
        track = tileB[:, assign.point]  # contiguous column of B
        for p in range(kc):
            yield ctx.sts(B_OFF + assign.smem_addresses[p], [track[p]])

    yield ctx.barrier()

    # --- compute: every thread rank-kc-updates its 8 x 8 microtile --------
    tx, ty = ctx.tx, ctx.ty
    for k in range(kc):
        a_addrs = compute_load_addresses(ty, k, layout, kc)
        b_addrs = compute_load_addresses(tx, k, layout, kc)
        a_vals = np.empty(8, dtype=np.float32)
        b_vals = np.empty(8, dtype=np.float32)
        for i in range(8):
            a_vals[i] = yield ctx.lds(int(a_addrs[i]))
        for i in range(8):
            b_vals[i] = yield ctx.lds(B_OFF + int(b_addrs[i]))
        acc[8 * ty : 8 * ty + 8, 8 * tx : 8 * tx + 8] += np.outer(a_vals, b_vals)

    yield ctx.barrier()


def run_stage_and_multiply(
    tileA: np.ndarray,
    tileB: np.ndarray,
    layout: Literal["optimized", "naive"] = "optimized",
) -> tuple[np.ndarray, BlockRunStats]:
    """Execute one k-panel on the interpreter; returns (acc, stats)."""
    tileA = np.asarray(tileA, dtype=np.float32)
    tileB = np.asarray(tileB, dtype=np.float32)
    kc = tileA.shape[1]
    if tileA.shape != (128, kc) or tileB.shape != (kc, 128):
        raise ValueError(f"expected (128, {kc}) x ({kc}, 128), got {tileA.shape} x {tileB.shape}")
    block = Block(block_dim=(16, 16), smem_words=2 * 128 * kc)
    acc = np.zeros((128, 128), dtype=np.float32)
    stats = block.run(stage_tile_kernel, tileA, tileB, acc, layout, kc)
    return acc, stats


def block_reduce_kernel(ctx: ThreadCtx, values: np.ndarray, out: np.ndarray):
    """Intra-CTA tree reduction used by the summation tail.

    Each thread contributes one value through shared memory; thread 0 of
    the block atomically adds the block total into ``out[0]``.
    """
    n = ctx.block_dim[0] * ctx.block_dim[1]
    yield ctx.sts(ctx.tid, [values[ctx.tid]])
    yield ctx.barrier()
    stride = n // 2
    while stride >= 1:
        if ctx.tid < stride:
            a = yield ctx.lds(ctx.tid)
            b = yield ctx.lds(ctx.tid + stride)
            yield ctx.sts(ctx.tid, [np.float32(a) + np.float32(b)])
        else:
            yield ctx.idle()
        yield ctx.barrier()
        stride //= 2
    if ctx.tid == 0:
        total = yield ctx.lds(0)
        yield ctx.atomic_add(out, 0, float(total))


def run_block_reduction(values: np.ndarray, block_dim=(16, 16)) -> tuple[float, BlockRunStats]:
    """Reduce ``values`` (one per thread) on the interpreter."""
    values = np.asarray(values, dtype=np.float32)
    n = block_dim[0] * block_dim[1]
    if values.shape != (n,):
        raise ValueError(f"need exactly {n} values, got {values.shape}")
    block = Block(block_dim=block_dim, smem_words=n)
    out = np.zeros(1, dtype=np.float32)
    stats = block.run(block_reduce_kernel, values, out)
    return float(out[0]), stats


def warp_shuffle_reduce_kernel(ctx: ThreadCtx, values: np.ndarray, out: np.ndarray):
    """Butterfly warp reduction via shuffles (no shared memory at all).

    Section II-C: threads of a warp "can exchange values using either
    shared memory or the shuffle instruction" — this is the shuffle
    variant: log2(32) exchange steps, then lane 0 of each warp atomically
    contributes the warp total.
    """
    acc = np.float32(values[ctx.tid])
    offset = 16
    while offset >= 1:
        other = yield ctx.shfl(float(acc), ctx.lane ^ offset)
        acc = np.float32(acc) + np.float32(other)
        offset //= 2
    if ctx.lane == 0:
        yield ctx.atomic_add(out, 0, float(acc))


def run_warp_shuffle_reduction(values: np.ndarray, num_warps: int = 8):
    """Reduce ``values`` (32 per warp) with the shuffle butterfly."""
    values = np.asarray(values, dtype=np.float32)
    n = 32 * num_warps
    if values.shape != (n,):
        raise ValueError(f"need exactly {n} values, got {values.shape}")
    block = Block(block_dim=(32, num_warps), smem_words=1)
    out = np.zeros(1, dtype=np.float32)
    stats = block.run(warp_shuffle_reduce_kernel, values, out)
    return float(out[0]), stats


def fused_cta_kernel(
    ctx: ThreadCtx,
    tileA: np.ndarray,
    tileB: np.ndarray,
    norm_a: np.ndarray,
    norm_b: np.ndarray,
    weights: np.ndarray,
    V: np.ndarray,
    h: float,
    kc: int,
):
    """Algorithm 2 for one CTA, executed at warp level.

    The full fused tail on real cooperative threads: panel staging
    (optimized Fig.-5 layout), rank-``kc`` update into per-thread microtile
    registers, Gaussian evaluation in registers, the intra-thread
    microtile-by-weights reduction, the intra-CTA staging of thread
    partials through shared memory (region T at word offset ``2*128*kc``),
    and one atomicAdd per row into ``V`` by the reducing half-block.
    """
    B_OFF = 128 * kc
    T_OFF = 2 * 128 * kc  # the T matrix region (mc x 16 thread partials)
    # row stride 17 (coprime with the 32 banks): consecutive rows start in
    # different banks, so the reduction's 32-row warp loads never collide —
    # the same repositioning idea as the Fig.-5 tile layout.
    T_STRIDE = 17
    half = ctx.block_dim[0] * ctx.block_dim[1] // 2
    tid, tx, ty = ctx.tid, ctx.tx, ctx.ty

    # --- staging (one panel: tiles are (128, kc) x (kc, 128)) ------------
    if tid < half:
        assign = store_assignment(tid, "optimized", kc)
        track = tileA[assign.point, :]
        for p in range(kc):
            yield ctx.sts(assign.smem_addresses[p], [track[p]])
    else:
        assign = store_assignment(tid - half, "optimized", kc)
        track = tileB[:, assign.point]
        for p in range(kc):
            yield ctx.sts(B_OFF + assign.smem_addresses[p], [track[p]])
    yield ctx.barrier()

    # --- GEMM portion: the thread's 8 x 8 microtile in "registers" -------
    acc = np.zeros((8, 8), dtype=np.float32)
    for k in range(kc):
        a_addrs = compute_load_addresses(ty, k, "optimized", kc)
        b_addrs = compute_load_addresses(tx, k, "optimized", kc)
        a_vals = np.empty(8, dtype=np.float32)
        b_vals = np.empty(8, dtype=np.float32)
        for i in range(8):
            a_vals[i] = yield ctx.lds(int(a_addrs[i]))
        for i in range(8):
            b_vals[i] = yield ctx.lds(B_OFF + int(b_addrs[i]))
        acc += np.outer(a_vals, b_vals)

    # injection site: the microtile accumulator lives purely in registers —
    # no memory-side protection ever sees a flip here
    inj = active_injector()
    if inj is not None:
        acc = inj.corrupt_array("accumulator", acc, where=f"microtile(t{tid})")

    # --- kernel evaluation out of registers (line 14) ---------------------
    rows = np.arange(8 * ty, 8 * ty + 8)
    cols = np.arange(8 * tx, 8 * tx + 8)
    sq = norm_a[rows][:, None] + norm_b[cols][None, :] - np.float32(2.0) * acc
    kmat = np.exp(-np.maximum(sq, 0.0) / np.float32(2.0 * h * h)).astype(np.float32)

    # --- intra-thread reduction (line 16): gamma = microtile x weights ----
    gamma = (kmat * weights[cols][None, :]).sum(axis=1, dtype=np.float32)

    # stage the 8 row-partials into T[row, tx]
    for i in range(8):
        yield ctx.sts(T_OFF + int(rows[i]) * T_STRIDE + tx, [float(gamma[i])])
    yield ctx.barrier()

    # --- intra-CTA reduction (lines 18-21): half the block, one row each --
    if ty < ctx.block_dim[1] // 2:
        row = tid  # 128 reducing threads <-> 128 rows
        total = np.float32(0.0)
        for j in range(16):
            val = yield ctx.lds(T_OFF + row * T_STRIDE + j)
            total = np.float32(total) + np.float32(val)
        yield ctx.atomic_add(V, row, float(total))
    else:
        yield ctx.idle()


def run_fused_cta(
    tileA: np.ndarray,
    tileB: np.ndarray,
    weights: np.ndarray,
    h: float = 1.0,
) -> tuple[np.ndarray, BlockRunStats]:
    """Run Algorithm 2 for one CTA (one k-panel) on the interpreter.

    Returns the 128-element potential slice and the run statistics.  The
    norms are computed host-side (the norms kernel of the pipeline).
    """
    tileA = np.asarray(tileA, dtype=np.float32)
    tileB = np.asarray(tileB, dtype=np.float32)
    weights = np.asarray(weights, dtype=np.float32)
    kc = tileA.shape[1]
    if tileA.shape != (128, kc) or tileB.shape != (kc, 128) or weights.shape != (128,):
        raise ValueError("expected tiles (128, kc) x (kc, 128) and 128 weights")
    norm_a = np.einsum("ik,ik->i", tileA, tileA).astype(np.float32)
    norm_b = np.einsum("kj,kj->j", tileB, tileB).astype(np.float32)
    V = np.zeros(128, dtype=np.float32)
    # smem: two tile buffers + the T staging region (128 rows x 16 partials)
    block = Block(block_dim=(16, 16), smem_words=2 * 128 * kc + 128 * 17)
    stats = block.run(
        fused_cta_kernel, tileA, tileB, norm_a, norm_b, weights, V, h, kc
    )
    return V, stats


def evalsum_cta_kernel(
    ctx: ThreadCtx,
    c_tile: np.ndarray,
    norm_a: np.ndarray,
    norm_b: np.ndarray,
    weights: np.ndarray,
    V: np.ndarray,
    h: float,
):
    """The baselines' eval+summation tail for one 128x128 C tile.

    Each thread owns one column strip of 8 rows x 8 columns of the
    already-materialized GEMM output (read from "global memory", i.e. the
    numpy array — the round trip the fused kernel eliminates), applies the
    Gaussian, multiplies by the weights, and reduces exactly like the
    fused tail: partials staged through the stride-17 T region, one atomic
    per row from the reducing half-block.
    """
    T_STRIDE = 17
    tx, ty, tid = ctx.tx, ctx.ty, ctx.tid
    rows = np.arange(8 * ty, 8 * ty + 8)
    cols = np.arange(8 * tx, 8 * tx + 8)

    # "global" reads of the intermediate + register-resident evaluation
    sq = (
        norm_a[rows][:, None]
        + norm_b[cols][None, :]
        - np.float32(2.0) * c_tile[np.ix_(rows, cols)]
    )
    kmat = np.exp(-np.maximum(sq, 0.0) / np.float32(2.0 * h * h)).astype(np.float32)
    gamma = (kmat * weights[cols][None, :]).sum(axis=1, dtype=np.float32)

    for i in range(8):
        yield ctx.sts(int(rows[i]) * T_STRIDE + tx, [float(gamma[i])])
    yield ctx.barrier()

    if ty < ctx.block_dim[1] // 2:
        row = tid
        total = np.float32(0.0)
        for j in range(16):
            val = yield ctx.lds(row * T_STRIDE + j)
            total = np.float32(total) + np.float32(val)
        yield ctx.atomic_add(V, row, float(total))
    else:
        yield ctx.idle()


def run_evalsum_cta(
    c_tile: np.ndarray,
    norm_a: np.ndarray,
    norm_b: np.ndarray,
    weights: np.ndarray,
    h: float = 1.0,
) -> tuple[np.ndarray, BlockRunStats]:
    """Run the unfused tail for one tile on the interpreter."""
    c_tile = np.asarray(c_tile, dtype=np.float32)
    if c_tile.shape != (128, 128):
        raise ValueError(f"expected a (128, 128) tile, got {c_tile.shape}")
    for name, v in (("norm_a", norm_a), ("norm_b", norm_b), ("weights", weights)):
        if np.asarray(v).shape != (128,):
            raise ValueError(f"{name} must have shape (128,)")
    V = np.zeros(128, dtype=np.float32)
    block = Block(block_dim=(16, 16), smem_words=128 * 17)
    stats = block.run(
        evalsum_cta_kernel,
        c_tile,
        np.asarray(norm_a, dtype=np.float32),
        np.asarray(norm_b, dtype=np.float32),
        np.asarray(weights, dtype=np.float32),
        V,
        h,
    )
    return V, stats


def double_buffered_gemm_kernel(
    ctx: ThreadCtx,
    tileAs: np.ndarray,
    tileBs: np.ndarray,
    acc: np.ndarray,
    kc: int,
):
    """Algorithm 2's double-buffered panel loop (lines 5-13), executed.

    ``tileAs``/``tileBs`` hold all k-panels ((panels, 128, kc) and
    (panels, kc, 128)).  Shared memory holds two (tileA, tileB) buffer
    pairs; the buffer index follows the paper's ``j <- j XOR 1``: panel
    ``i+1`` is staged into buffer ``j^1`` while panel ``i`` in buffer ``j``
    feeds the rank-kc update, with one barrier per iteration.
    """
    panels = tileAs.shape[0]
    PAIR = 2 * 128 * kc  # words of one (tileA, tileB) buffer pair
    B_OFF = 128 * kc
    half = ctx.block_dim[0] * ctx.block_dim[1] // 2
    tid, tx, ty = ctx.tid, ctx.tx, ctx.ty

    def stage(panel: int, buf: int):
        base = buf * PAIR
        if tid < half:
            assign = store_assignment(tid, "optimized", kc)
            track = tileAs[panel, assign.point, :]
            for p in range(kc):
                yield ctx.sts(base + assign.smem_addresses[p], [track[p]])
        else:
            assign = store_assignment(tid - half, "optimized", kc)
            track = tileBs[panel, :, assign.point]
            for p in range(kc):
                yield ctx.sts(base + B_OFF + assign.smem_addresses[p], [track[p]])

    def compute(buf: int):
        base = buf * PAIR
        for k in range(kc):
            a_addrs = compute_load_addresses(ty, k, "optimized", kc)
            b_addrs = compute_load_addresses(tx, k, "optimized", kc)
            a_vals = np.empty(8, dtype=np.float32)
            b_vals = np.empty(8, dtype=np.float32)
            for i in range(8):
                a_vals[i] = yield ctx.lds(base + int(a_addrs[i]))
            for i in range(8):
                b_vals[i] = yield ctx.lds(base + B_OFF + int(b_addrs[i]))
            acc[8 * ty : 8 * ty + 8, 8 * tx : 8 * tx + 8] += np.outer(a_vals, b_vals)

    # line 5: prologue load of panel 0 into buffer 0
    j = 0
    yield from stage(0, j)
    yield ctx.barrier()  # line 6
    for i in range(1, panels):  # line 7
        j ^= 1  # line 8
        yield from stage(i, j)  # line 9: load next panel into the other buffer
        yield from compute(j ^ 1)  # line 10: compute on the current buffer
        yield ctx.barrier()  # line 11
    yield from compute(j)  # line 13: the final panel


def run_double_buffered_gemm(
    A: np.ndarray, B: np.ndarray
) -> tuple[np.ndarray, BlockRunStats]:
    """Run the double-buffered panel loop for one CTA over all of K."""
    A = np.asarray(A, dtype=np.float32)
    B = np.asarray(B, dtype=np.float32)
    kc = 8
    if A.shape[0] != 128 or B.shape[1] != 128 or A.shape[1] != B.shape[0]:
        raise ValueError(f"expected (128, K) x (K, 128), got {A.shape} x {B.shape}")
    if A.shape[1] % kc:
        raise ValueError("K must be a multiple of the k-panel depth (8)")
    panels = A.shape[1] // kc
    tileAs = np.stack([A[:, i * kc : (i + 1) * kc] for i in range(panels)])
    tileBs = np.stack([B[i * kc : (i + 1) * kc, :] for i in range(panels)])
    acc = np.zeros((128, 128), dtype=np.float32)
    block = Block(block_dim=(16, 16), smem_words=2 * 2 * 128 * kc)
    stats = block.run(double_buffered_gemm_kernel, tileAs, tileBs, acc, kc)
    return acc, stats
