"""Blocking configuration for the tiled GEMM / fused kernel.

Section III-A of the paper settles on one design point after walking the
resource trade-offs, and this module encodes both the point and the
constraints that led to it:

* each CTA computes a 128 x 128 ``submatrixC``;
* the CTA is a 16 x 16 thread grid; each thread owns an 8 x 8 microtile
  held entirely in registers (64 accumulators);
* the k dimension is processed in rank-8 panels: ``tileA`` is 128 x 8 and
  ``tileB`` is 8 x 128, staged through shared memory;
* double buffering keeps two (tileA, tileB) pairs resident, so shared
  memory per CTA is ``2 * (128*8 + 8*128) * 4B = 16 KiB``;
* the register budget (64 accumulators + 16 rank-1 operands + ~32 for
  indices/control, i.e. the paper's "96 to 128 registers") caps residency
  at **two CTAs per SM** on the GTX970.

:class:`TilingConfig` validates any alternative point (used by the ablation
benches: 4 x 4 microtiles, single buffering, ...) against the same launch
rules the hardware enforces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gpu.device import DeviceSpec
from ..gpu.occupancy import OccupancyResult, occupancy

__all__ = ["TilingConfig", "PAPER_TILING"]


@dataclass(frozen=True)
class TilingConfig:
    """One blocking scheme for the GEMM-structured kernels."""

    mc: int = 128  # rows of submatrixC per CTA
    nc: int = 128  # cols of submatrixC per CTA
    kc: int = 8  # k-panel depth (rank-kc update)
    block_dim_x: int = 16  # threads in x (column direction)
    block_dim_y: int = 16  # threads in y (row direction)
    double_buffered: bool = True
    #: registers for indices, pointers, and control flow, on top of the
    #: accumulators and rank-1 operands that the microtile shape dictates.
    overhead_regs: int = 32
    element_bytes: int = 4  # float32

    def __post_init__(self) -> None:
        if min(self.mc, self.nc, self.kc, self.block_dim_x, self.block_dim_y) <= 0:
            raise ValueError("all tiling dimensions must be positive")
        if self.mc % self.block_dim_y or self.nc % self.block_dim_x:
            raise ValueError("CTA tile must divide evenly among the thread grid")
        # every thread must load a whole number of elements per tile
        tile_elems = self.mc * self.kc + self.kc * self.nc
        if tile_elems % self.threads_per_block:
            raise ValueError("tile elements must split evenly across threads for loading")

    # -- derived shapes -----------------------------------------------------
    @property
    def micro_m(self) -> int:
        """Rows of the per-thread microtile."""
        return self.mc // self.block_dim_y

    @property
    def micro_n(self) -> int:
        """Columns of the per-thread microtile."""
        return self.nc // self.block_dim_x

    @property
    def threads_per_block(self) -> int:
        return self.block_dim_x * self.block_dim_y

    @property
    def warps_per_block(self) -> int:
        return math.ceil(self.threads_per_block / 32)

    # -- resource footprint --------------------------------------------------
    @property
    def smem_words_per_buffer(self) -> int:
        """Words of one (tileA, tileB) pair."""
        return self.mc * self.kc + self.kc * self.nc

    @property
    def smem_per_block(self) -> int:
        """Shared-memory bytes per CTA (doubled when double buffering)."""
        buffers = 2 if self.double_buffered else 1
        return buffers * self.smem_words_per_buffer * self.element_bytes

    @property
    def regs_per_thread(self) -> int:
        """Modelled register demand per thread (paper: 96-128 at the 8x8 point)."""
        accumulators = self.micro_m * self.micro_n
        operands = self.micro_m + self.micro_n
        return accumulators + operands + self.overhead_regs

    # -- grid geometry -------------------------------------------------------
    def grid(self, M: int, N: int) -> tuple[int, int]:
        """CTA grid as (blocks_x, blocks_y) = (ceil(N/nc), ceil(M/mc))."""
        if M <= 0 or N <= 0:
            raise ValueError("matrix dimensions must be positive")
        return math.ceil(N / self.nc), math.ceil(M / self.mc)

    def grid_blocks(self, M: int, N: int) -> int:
        gx, gy = self.grid(M, N)
        return gx * gy

    def k_iterations(self, K: int) -> int:
        """Number of rank-``kc`` panel updates along the K dimension."""
        if K <= 0:
            raise ValueError("K must be positive")
        return math.ceil(K / self.kc)

    # -- device interaction ----------------------------------------------------
    def occupancy_on(self, device: DeviceSpec) -> OccupancyResult:
        """Occupancy of this configuration on ``device``."""
        return occupancy(
            device,
            threads_per_block=self.threads_per_block,
            regs_per_thread=min(self.regs_per_thread, device.max_registers_per_thread),
            smem_per_block=self.smem_per_block,
        )

    def describe(self) -> str:
        return (
            f"CTA {self.mc}x{self.nc}, k-panel {self.kc}, threads "
            f"{self.block_dim_x}x{self.block_dim_y}, microtile "
            f"{self.micro_m}x{self.micro_n}, smem {self.smem_per_block}B, "
            f"~{self.regs_per_thread} regs/thread"
            f"{', double-buffered' if self.double_buffered else ''}"
        )


#: The paper's design point (section III-A).
PAPER_TILING = TilingConfig()
