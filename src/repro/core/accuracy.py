"""Floating-point error analysis of the expansion identity.

The GPU implementations all compute squared distances through

    ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b                    (eq. 3)

in float32, which *cancels catastrophically* when ``a ~ b``: the three
terms are each O(||a||^2) while the result is O(||a-b||^2).  This module
provides the standard forward bounds and measurement helpers so users can
decide whether the expansion is safe for their data — the kind of
numerical due diligence the paper leaves implicit.

Key facts encoded here:

* absolute error of the float32 expansion is ~ ``eps32 * (K+2) * R^2``
  where ``R`` bounds the point norms — *independent of the distance*, so
  the relative error of small distances blows up as ``R^2 / d^2``;
* through the Gaussian kernel the *absolute* output error stays tame
  (``|dK| <= |d(sqdist)| / (2 h^2)`` since ``|K'| <= 1/(2h^2) * K <= ...``),
  which is why the paper's float32 pipeline is accurate for potentials
  even when individual tiny distances are relatively wrong;
* the final summation over N terms accumulates ~ ``eps32 * sqrt(N)``
  relative error under round-to-nearest with random signs.
"""

from __future__ import annotations

import math

import numpy as np

from .problem import ProblemData
from .reference import pairwise_sqdist

__all__ = [
    "expansion_error_bound",
    "measured_expansion_error",
    "summation_error_bound",
    "potential_error_bound",
]

EPS32 = float(np.finfo(np.float32).eps)


def expansion_error_bound(K: int, radius: float) -> float:
    """A priori absolute error bound of the float32 expansion identity.

    For points with ``||x|| <= radius``: each of the three terms is
    computed with ~``(K+1)`` float32 roundings on values of magnitude up
    to ``4 * radius^2`` (the −2ab term), giving
    ``err <= 3 (K+2) eps32 radius^2`` up to constants.
    """
    if K <= 0:
        raise ValueError("K must be positive")
    if radius <= 0:
        raise ValueError("radius must be positive")
    return 3.0 * (K + 2) * EPS32 * 4.0 * radius * radius


def measured_expansion_error(data: ProblemData) -> float:
    """Largest absolute float32-expansion error over all pairs.

    Compares the float32 expansion (as the kernels compute it) with the
    float64 direct distance; feasible for modest M x N.
    """
    A32 = data.A.astype(np.float32)
    B32 = data.B.astype(np.float32)
    na = np.einsum("ik,ik->i", A32, A32)
    nb = np.einsum("kj,kj->j", B32, B32)
    C = A32 @ B32
    sq32 = na[:, None] + nb[None, :] - np.float32(2.0) * C
    exact = pairwise_sqdist(data.A, data.B)
    return float(np.max(np.abs(sq32.astype(np.float64) - exact)))


def summation_error_bound(N: int, weight_scale: float) -> float:
    """Probabilistic float32 bound for summing N kernel-weighted terms.

    Terms are bounded by ``weight_scale`` (Gaussian kernel values are at
    most 1); under round-to-nearest with stochastic signs the error grows
    as ``eps32 * sqrt(N) * weight_scale * c`` — we use c = 2.
    """
    if N <= 0:
        raise ValueError("N must be positive")
    if weight_scale < 0:
        raise ValueError("weight_scale cannot be negative")
    return 2.0 * EPS32 * math.sqrt(N) * weight_scale


def potential_error_bound(data: ProblemData, radius: float | None = None) -> float:
    """End-to-end absolute error bound for one potential V[i].

    Combines the distance-expansion error pushed through the Gaussian
    (Lipschitz constant ``max|K'| = exp(-1/2)/(h sqrt(...)) <= 1/(2h^2)``
    on the squared-distance argument) with the summation bound.
    """
    spec = data.spec
    if radius is None:
        radius = float(
            max(
                np.linalg.norm(data.A.astype(np.float64), axis=1).max(),
                np.linalg.norm(data.B.astype(np.float64), axis=0).max(),
            )
        )
    dist_err = expansion_error_bound(spec.K, radius)
    lipschitz = 1.0 / (2.0 * spec.h * spec.h)
    w_mass = float(np.abs(data.W.astype(np.float64)).sum())
    w_scale = float(np.abs(data.W.astype(np.float64)).max())
    kernel_err = dist_err * lipschitz * w_mass
    sum_err = summation_error_bound(spec.N, w_scale)
    return kernel_err + sum_err
