#!/usr/bin/env python
"""Gate collected profiles and hot-path benchmarks against committed baselines.

    python tools/check_regression.py \
        --baseline benchmarks/results/BENCH_profile.json \
        --current BENCH_profile.json [--rtol 0.02]

    python tools/check_regression.py \
        --hotpath-current BENCH_hotpath.json [--hotpath-rtol 0.2]

Profile gate: compares every deterministic model metric the baseline
records (:data:`repro.obs.profiling.TRACKED_METRICS`) point by point and
exits non-zero if any drifts beyond ``--rtol``.  Wall-clock fields
(``model_wall_seconds``, functional ``wall_seconds``) are host-dependent
and never gated.

Hot-path gate: compares the *speedup ratios* recorded by
``benchmarks/bench_hotpath.py`` case by case (intersecting names only) and
fails if any current speedup falls below ``baseline * (1 - hotpath_rtol)``
— by default a >20 % regression of a batched/vectorized path.  Speedups
are same-machine ratios, so they transfer across hosts far better than
absolute times; on noisy shared runners loosen the gate with
``--hotpath-rtol 0.5`` (the override CI uses) rather than skipping it.

Both gates run when both ``--current`` and ``--hotpath-current`` are
given; at least one is required.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.profiling import compare_profiles, load_profile  # noqa: E402

HOTPATH_SCHEMA = "repro-hotpath-bench/v1"


def _load_hotpath(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != HOTPATH_SCHEMA:
        raise ValueError(f"{path}: not a {HOTPATH_SCHEMA} report")
    return {c["name"]: c for c in data.get("cases", [])}


def check_hotpath(baseline_path: str, current_path: str, rtol: float) -> list[str]:
    """Speedup drifts beyond ``rtol``, one message per failing case."""
    baseline = _load_hotpath(baseline_path)
    current = _load_hotpath(current_path)
    drifts = []
    shared = sorted(set(baseline) & set(current))
    if not shared:
        raise ValueError("no case names in common between baseline and current")
    for name in shared:
        want = float(baseline[name]["speedup"])
        got = float(current[name]["speedup"])
        floor = want * (1.0 - rtol)
        if got < floor:
            drifts.append(
                f"{name}: speedup {got:.2f}x < floor {floor:.2f}x "
                f"(baseline {want:.2f}x, rtol {rtol:g})"
            )
    return drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_profile.json"),
        help="committed reference profile (default: benchmarks/results/BENCH_profile.json)",
    )
    parser.add_argument("--current", default=None, help="freshly collected profile")
    parser.add_argument(
        "--rtol", type=float, default=0.02,
        help="relative drift tolerance per profile metric (default 0.02)",
    )
    parser.add_argument(
        "--hotpath-baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_hotpath.json"),
        help="committed hot-path benchmark (default: benchmarks/results/BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--hotpath-current", default=None,
        help="freshly collected hot-path benchmark (benchmarks/bench_hotpath.py output)",
    )
    parser.add_argument(
        "--hotpath-rtol", type=float, default=0.2,
        help="allowed relative speedup loss per hot-path case (default 0.2; "
        "use 0.5 on noisy shared runners)",
    )
    args = parser.parse_args(argv)

    if args.current is None and args.hotpath_current is None:
        parser.error("nothing to gate: pass --current and/or --hotpath-current")

    failures = 0

    if args.current is not None:
        try:
            baseline = load_profile(args.baseline)
            current = load_profile(args.current)
        except (OSError, ValueError) as exc:
            print(f"cannot load profile: {exc}", file=sys.stderr)
            return 2
        drifts = compare_profiles(baseline, current, rtol=args.rtol)
        points = len(baseline.get("records", []))
        if drifts:
            failures += 1
            print(
                f"REGRESSION: {len(drifts)} drift(s) vs {args.baseline} "
                f"(rtol={args.rtol:g}):",
                file=sys.stderr,
            )
            for d in drifts:
                print(f"  {d}", file=sys.stderr)
        else:
            print(f"OK: {points} baseline points within rtol={args.rtol:g} of {args.current}")

    if args.hotpath_current is not None:
        try:
            drifts = check_hotpath(
                args.hotpath_baseline, args.hotpath_current, args.hotpath_rtol
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load hot-path benchmark: {exc}", file=sys.stderr)
            return 2
        if drifts:
            failures += 1
            print(
                f"REGRESSION: {len(drifts)} hot-path speedup(s) below floor "
                f"vs {args.hotpath_baseline} (rtol={args.hotpath_rtol:g}):",
                file=sys.stderr,
            )
            for d in drifts:
                print(f"  {d}", file=sys.stderr)
        else:
            print(
                f"OK: hot-path speedups within rtol={args.hotpath_rtol:g} "
                f"of {args.hotpath_baseline}"
            )

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
