#!/usr/bin/env python
"""Gate a collected profile against the committed baseline.

    python tools/check_regression.py \
        --baseline benchmarks/results/BENCH_profile.json \
        --current BENCH_profile.json [--rtol 0.02]

Compares every deterministic model metric the baseline records
(:data:`repro.obs.profiling.TRACKED_METRICS`) point by point and exits
non-zero if any drifts beyond the tolerance, printing one line per drift.
Wall-clock fields (``model_wall_seconds``, functional ``wall_seconds``)
are host-dependent and never gated.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.profiling import compare_profiles, load_profile  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_profile.json"),
        help="committed reference profile (default: benchmarks/results/BENCH_profile.json)",
    )
    parser.add_argument("--current", required=True, help="freshly collected profile")
    parser.add_argument(
        "--rtol", type=float, default=0.02,
        help="relative drift tolerance per metric (default 0.02)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_profile(args.baseline)
        current = load_profile(args.current)
    except (OSError, ValueError) as exc:
        print(f"cannot load profile: {exc}", file=sys.stderr)
        return 2

    drifts = compare_profiles(baseline, current, rtol=args.rtol)
    points = len(baseline.get("records", []))
    if drifts:
        print(
            f"REGRESSION: {len(drifts)} drift(s) vs {args.baseline} "
            f"(rtol={args.rtol:g}):",
            file=sys.stderr,
        )
        for d in drifts:
            print(f"  {d}", file=sys.stderr)
        return 1
    print(f"OK: {points} baseline points within rtol={args.rtol:g} of {args.current}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
