#!/usr/bin/env python
"""Gate collected profiles and hot-path benchmarks against committed baselines.

    python tools/check_regression.py \
        --baseline benchmarks/results/BENCH_profile.json \
        --current BENCH_profile.json [--rtol 0.02]

    python tools/check_regression.py \
        --hotpath-current BENCH_hotpath.json [--hotpath-rtol 0.2]

Profile gate: compares every deterministic model metric the baseline
records (:data:`repro.obs.profiling.TRACKED_METRICS`) point by point and
exits non-zero if any drifts beyond ``--rtol``.  Wall-clock fields
(``model_wall_seconds``, functional ``wall_seconds``) are host-dependent
and never gated.

Hot-path gate: compares the *speedup ratios* recorded by
``benchmarks/bench_hotpath.py`` case by case (intersecting names only) and
fails if any current speedup falls below ``baseline * (1 - hotpath_rtol)``
— by default a >20 % regression of a batched/vectorized path.  Speedups
are same-machine ratios, so they transfer across hosts far better than
absolute times; on noisy shared runners loosen the gate with
``--hotpath-rtol 0.5`` (the override CI uses) rather than skipping it.

Sweep-backend gate (``--sweep-current BENCH_sweep.json``): checks the
``benchmarks/bench_sweep_backend.py`` report for the two acceptance
claims of the result-store PR — a warm (fully cached) sweep at least
``--sweep-min-warm`` (default 10) times faster than the cold run, and the
process backend at least ``--sweep-min-process`` (default 2) times faster
than the thread backend.  The process-vs-thread floor only binds when the
report was collected on >= 4 cores: a 1-2 core container cannot express a
parallelism win, and gating it there would only test the pool overhead.
The report's ``bit_identical`` flag (all backends and the warm replay
agree exactly) must be true unconditionally.  The committed baseline is
compared loosely (``--sweep-rtol``, default 0.9 — i.e. an
order-of-magnitude check): warm-vs-cold mixes disk latency against
compute speed, so tight cross-host gating would be noise.

Serve gate (``--serve-current BENCH_serve.json``): checks the
``benchmarks/bench_serve.py`` report for the serving-layer PR's
acceptance claims — every served answer bit-identical to an offline solve
(the report's ``correct`` flag; the bench refuses to even write a report
otherwise), and micro-batched dispatch at least ``--serve-min-batched``
(default 1.1) times the sequential throughput at concurrency >= 8.  The
committed baseline is compared loosely (``--serve-rtol``, default 0.9):
the ratio mixes fsync latency against scheduler overhead, so tight
cross-host gating would be noise.  The report's ``telemetry`` section is
gated absolutely: the batched wall with the full observability stack
armed may not exceed ``--serve-max-telemetry-overhead`` (default 1.05)
times the disarmed wall, and the armed run must actually have recorded
spans and metered energy — a telemetry layer that wins the overhead gate
by silently not running does not pass.

Fast-summation gate (``--fast-current BENCH_fast.json``): checks the
``benchmarks/bench_fast.py`` report for the hierarchical-engine PR's
acceptance claims — the largest speedup case at least
``--fast-min-speedup`` (default 5) times the dense wall, every case's
*measured* ``max_rel_error`` within the report's ``eps``, and the auto
router costing at most ``--fast-max-auto-overhead`` (default 1.1) times
dense on every crossover point it routed dense.  The committed baseline
is compared loosely (``--fast-rtol``, default 0.9): the headline
speedup divides an extrapolated dense wall by a measured hierarchical
wall, so tight cross-host gating would be noise.

Autotune gate (``--autotune-current BENCH_autotune.json``): checks the
``benchmarks/bench_autotune.py`` report for the autotuner-v2 PR's
acceptance claims — the beam search returning the exhaustive winner on
every paper-space case (``match`` true and ``quality_ratio`` within
``--autotune-max-quality``, default 1.01), the wide-space evaluation
ratio at least ``--autotune-min-eval-ratio`` (default 10x fewer full
cost-model evaluations than exhaustive), the warm replay performing
zero evaluations and returning bit-identical results, and the wide-
space winner carrying an accepted static certification (race-free,
bank gate not rejected).  These are determinism/counter claims, not
wall-clock ones, so no rtol applies and the committed baseline is only
used as the schema reference.

Any combination of gates runs when the corresponding ``--*-current`` is
given; at least one is required.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.profiling import compare_profiles, load_profile  # noqa: E402

HOTPATH_SCHEMA = "repro-hotpath-bench/v1"
SWEEP_SCHEMA = "repro-sweep-bench/v1"
SERVE_SCHEMA = "repro-serve-bench/v1"
FAST_SCHEMA = "repro-fast-bench/v1"
AUTOTUNE_SCHEMA = "repro-autotune-bench/v1"
FPCERT_SCHEMA = "repro-fpcert-bench/v1"


def _load_hotpath(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != HOTPATH_SCHEMA:
        raise ValueError(f"{path}: not a {HOTPATH_SCHEMA} report")
    return {c["name"]: c for c in data.get("cases", [])}


def check_hotpath(baseline_path: str, current_path: str, rtol: float) -> list[str]:
    """Speedup drifts beyond ``rtol``, one message per failing case."""
    baseline = _load_hotpath(baseline_path)
    current = _load_hotpath(current_path)
    drifts = []
    shared = sorted(set(baseline) & set(current))
    if not shared:
        raise ValueError("no case names in common between baseline and current")
    for name in shared:
        want = float(baseline[name]["speedup"])
        got = float(current[name]["speedup"])
        floor = want * (1.0 - rtol)
        if got < floor:
            drifts.append(
                f"{name}: speedup {got:.2f}x < floor {floor:.2f}x "
                f"(baseline {want:.2f}x, rtol {rtol:g})"
            )
    return drifts


def _load_sweep(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != SWEEP_SCHEMA:
        raise ValueError(f"{path}: not a {SWEEP_SCHEMA} report")
    return data


def check_sweep(
    baseline_path: str,
    current_path: str,
    min_warm: float,
    min_process: float,
    rtol: float,
) -> list[str]:
    """Violated sweep-backend acceptance floors, one message per issue."""
    current = _load_sweep(current_path)
    issues = []
    if current.get("quick"):
        raise ValueError(f"{current_path}: --quick runs are never gated")
    if not current.get("bit_identical"):
        issues.append("backends/warm replay are not bit-identical")
    if not current.get("warm_fully_cached"):
        issues.append("warm run was not served entirely from the store")
    speedups = current.get("speedups", {})
    warm = float(speedups.get("warm_vs_cold", 0.0))
    if warm < min_warm:
        issues.append(
            f"warm_vs_cold {warm:.2f}x < required {min_warm:g}x"
        )
    cores = int(current.get("cores", 1))
    proc = float(speedups.get("process_vs_thread", 0.0))
    if cores >= 4:
        if proc < min_process:
            issues.append(
                f"process_vs_thread {proc:.2f}x < required {min_process:g}x "
                f"on {cores} cores"
            )
    else:
        print(
            f"note: process_vs_thread floor not binding on {cores} core(s) "
            f"(measured {proc:.2f}x; needs >= 4 cores to express parallelism)"
        )
    baseline = _load_sweep(baseline_path)
    want = float(baseline.get("speedups", {}).get("warm_vs_cold", 0.0))
    floor = want * (1.0 - rtol)
    if warm < floor:
        issues.append(
            f"warm_vs_cold {warm:.2f}x < {floor:.2f}x "
            f"(baseline {want:.2f}x, rtol {rtol:g})"
        )
    return issues


def _load_serve(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != SERVE_SCHEMA:
        raise ValueError(f"{path}: not a {SERVE_SCHEMA} report")
    return data


def check_serve(
    baseline_path: str,
    current_path: str,
    min_batched: float,
    rtol: float,
    max_telemetry: float = 1.05,
) -> list[str]:
    """Violated serving-layer acceptance floors, one message per issue."""
    current = _load_serve(current_path)
    issues = []
    if current.get("quick"):
        raise ValueError(f"{current_path}: --quick runs are never gated")
    if not current.get("correct"):
        issues.append("served answers were not bit-identical to offline solves")
    if int(current.get("concurrency", 0)) < 8:
        issues.append(
            f"report collected at concurrency {current.get('concurrency')} "
            "< 8; the batching claim binds at concurrency >= 8"
        )
    ratio = float(current.get("speedups", {}).get("batched_vs_sequential", 0.0))
    if ratio < min_batched:
        issues.append(
            f"batched_vs_sequential {ratio:.2f}x < required {min_batched:g}x"
        )
    telemetry = current.get("telemetry")
    if telemetry is None:
        issues.append("report has no telemetry section (bench_serve.py is stale)")
    else:
        overhead = float(telemetry.get("overhead_ratio", 0.0))
        if overhead > max_telemetry:
            issues.append(
                f"telemetry overhead {overhead:.3f}x > allowed {max_telemetry:g}x "
                "(tracing+metrics+energy metering must stay cheap)"
            )
        if int(telemetry.get("spans_recorded", 0)) <= 0:
            issues.append("telemetry run recorded no spans (stack was not armed)")
        if int(telemetry.get("energy_metered_requests", 0)) <= 0:
            issues.append("telemetry run metered no energy (meter was not armed)")
    baseline = _load_serve(baseline_path)
    want = float(baseline.get("speedups", {}).get("batched_vs_sequential", 0.0))
    floor = want * (1.0 - rtol)
    if ratio < floor:
        issues.append(
            f"batched_vs_sequential {ratio:.2f}x < {floor:.2f}x "
            f"(baseline {want:.2f}x, rtol {rtol:g})"
        )
    return issues


def _load_fast(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != FAST_SCHEMA:
        raise ValueError(f"{path}: not a {FAST_SCHEMA} report")
    return data


def check_fast(
    baseline_path: str,
    current_path: str,
    min_speedup: float,
    max_auto_overhead: float,
    rtol: float,
) -> list[str]:
    """Violated fast-summation acceptance floors, one message per issue."""
    current = _load_fast(current_path)
    issues = []
    if current.get("quick"):
        raise ValueError(f"{current_path}: --quick runs are never gated")
    eps = float(current["eps"])
    cases = current.get("speedup", [])
    if not cases:
        raise ValueError(f"{current_path}: no speedup cases")
    for case in cases:
        err = float(case["max_rel_error"])
        if err > eps:
            issues.append(
                f"{case['name']}: measured max_rel_error {err:.2e} "
                f"over eps {eps:g} — the accuracy contract is broken"
            )
    largest = max(cases, key=lambda c: int(c["M"]) * int(c["N"]))
    got = float(largest["speedup"])
    if got < min_speedup:
        issues.append(
            f"{largest['name']}: speedup {got:.1f}x < required {min_speedup:g}x"
        )
    for point in current.get("crossover", []):
        if point.get("auto_method") != "dense":
            continue
        ratio = float(point["auto_vs_dense"])
        if ratio > max_auto_overhead:
            issues.append(
                f"crossover M=N={point['M']}: auto routed dense but cost "
                f"{ratio:.2f}x dense > allowed {max_auto_overhead:g}x"
            )
    baseline = _load_fast(baseline_path)
    base_cases = baseline.get("speedup", [])
    if base_cases:
        base_largest = max(base_cases, key=lambda c: int(c["M"]) * int(c["N"]))
        want = float(base_largest["speedup"])
        floor = want * (1.0 - rtol)
        if got < floor:
            issues.append(
                f"{largest['name']}: speedup {got:.1f}x < {floor:.1f}x "
                f"(baseline {want:.1f}x, rtol {rtol:g})"
            )
    return issues


def _load_autotune(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != AUTOTUNE_SCHEMA:
        raise ValueError(f"{path}: not a {AUTOTUNE_SCHEMA} report")
    return data


def check_autotune(
    current_path: str,
    min_eval_ratio: float,
    max_quality: float,
) -> list[str]:
    """Violated autotuner-v2 acceptance claims, one message per issue."""
    current = _load_autotune(current_path)
    issues = []
    if current.get("quick"):
        raise ValueError(f"{current_path}: --quick runs are never gated")

    cases = current.get("paper_space", {}).get("cases", [])
    if not cases:
        raise ValueError(f"{current_path}: no paper-space cases")
    for case in cases:
        if not case.get("match"):
            issues.append(
                f"paper space K={case['K']}: beam winner "
                f"{case.get('winner')} != exhaustive winner "
                f"{case.get('exhaustive_winner')}"
            )
        quality = float(case.get("quality_ratio", float("inf")))
        if quality > max_quality:
            issues.append(
                f"paper space K={case['K']}: quality ratio {quality:.4f} "
                f"> allowed {max_quality:g}"
            )

    wide = current.get("wide_space", {})
    ratio = float(wide.get("eval_ratio", 0.0))
    if ratio < min_eval_ratio:
        issues.append(
            f"wide space: eval ratio {ratio:.1f}x < required "
            f"{min_eval_ratio:g}x (beam {wide.get('beam_evaluations')} "
            f"vs exhaustive {wide.get('exhaustive_evaluations')} evaluations)"
        )
    cert = wide.get("certification")
    if cert is None:
        issues.append("wide space: winner carries no certification")
    else:
        if not cert.get("race_free"):
            issues.append("wide space: winner is not proven race-free")
        if cert.get("bank_status") == "rejected":
            issues.append("wide space: winner was rejected by the bank certifier")
        if not cert.get("accepted"):
            issues.append("wide space: winner's certification was not accepted")

    warm = current.get("warm_replay", {})
    if int(warm.get("warm_evaluations", 1)) != 0:
        issues.append(
            f"warm replay performed {warm.get('warm_evaluations')} "
            "model evaluation(s); the memoised store must make it zero"
        )
    if int(warm.get("warm_store_hits", 0)) <= 0:
        issues.append("warm replay hit the store zero times")
    if not warm.get("identical"):
        issues.append("warm replay diverged from the cold run")
    return issues


def _load_fpcert(path: str) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != FPCERT_SCHEMA:
        raise ValueError(f"{path}: not a {FPCERT_SCHEMA} report")
    return data


def check_fpcert(current_path: str) -> list[str]:
    """Violated accuracy-certificate claims, one message per issue.

    These are proof claims, not noisy timings, so there is no tolerance
    knob: a single measured error above its certified bound, a rejected
    paper certificate, or an accepted negative control fails outright.
    """
    current = _load_fpcert(current_path)
    issues = []
    if current.get("quick"):
        raise ValueError(f"{current_path}: --quick runs are never gated")

    cases = current.get("cases", [])
    if not cases:
        raise ValueError(f"{current_path}: no validation cases")
    for case in cases:
        where = (f"{case.get('schedule')} K={case.get('K')} "
                 f"engine={case.get('engine')}")
        if not case.get("certified"):
            issues.append(f"{where}: paper schedule was not certified")
        if not case.get("ok"):
            issues.append(
                f"{where}: measured error {case.get('measured'):.3e} "
                f"exceeds certified bound {case.get('bound'):.3e}"
            )
    controls = current.get("negative_controls", {})
    for name in ("narrowed_accumulator", "uncompensated_two_pass"):
        verdict = controls.get(name)
        if verdict is None:
            issues.append(f"negative control {name} missing from the report")
        elif verdict.get("certified"):
            issues.append(
                f"negative control {name} was certified; the analyzer "
                "cannot see planted accuracy bugs"
            )
    return issues


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_profile.json"),
        help="committed reference profile (default: benchmarks/results/BENCH_profile.json)",
    )
    parser.add_argument("--current", default=None, help="freshly collected profile")
    parser.add_argument(
        "--rtol", type=float, default=0.02,
        help="relative drift tolerance per profile metric (default 0.02)",
    )
    parser.add_argument(
        "--hotpath-baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_hotpath.json"),
        help="committed hot-path benchmark (default: benchmarks/results/BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--hotpath-current", default=None,
        help="freshly collected hot-path benchmark (benchmarks/bench_hotpath.py output)",
    )
    parser.add_argument(
        "--hotpath-rtol", type=float, default=0.2,
        help="allowed relative speedup loss per hot-path case (default 0.2; "
        "use 0.5 on noisy shared runners)",
    )
    parser.add_argument(
        "--sweep-baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_sweep.json"),
        help="committed sweep-backend benchmark (default: benchmarks/results/BENCH_sweep.json)",
    )
    parser.add_argument(
        "--sweep-current", default=None,
        help="freshly collected sweep benchmark (benchmarks/bench_sweep_backend.py output)",
    )
    parser.add_argument(
        "--sweep-min-warm", type=float, default=10.0,
        help="required warm-vs-cold speedup of a fully cached sweep (default 10)",
    )
    parser.add_argument(
        "--sweep-min-process", type=float, default=2.0,
        help="required process-vs-thread speedup on >= 4-core hosts (default 2)",
    )
    parser.add_argument(
        "--sweep-rtol", type=float, default=0.9,
        help="allowed relative warm-speedup loss vs the committed baseline "
        "(default 0.9: an order-of-magnitude check, not a tight gate)",
    )
    parser.add_argument(
        "--serve-baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_serve.json"),
        help="committed serve benchmark (default: benchmarks/results/BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-current", default=None,
        help="freshly collected serve benchmark (benchmarks/bench_serve.py output)",
    )
    parser.add_argument(
        "--serve-min-batched", type=float, default=1.1,
        help="required batched-vs-sequential throughput ratio at "
        "concurrency >= 8 (default 1.1)",
    )
    parser.add_argument(
        "--serve-rtol", type=float, default=0.9,
        help="allowed relative batched-ratio loss vs the committed baseline "
        "(default 0.9: an order-of-magnitude check, not a tight gate)",
    )
    parser.add_argument(
        "--serve-max-telemetry-overhead", type=float, default=1.05,
        help="allowed batched-wall ratio with the full telemetry stack armed "
        "vs off (default 1.05 — a 5%% tax; use 1.5 on noisy shared runners)",
    )
    parser.add_argument(
        "--fast-baseline",
        default=str(ROOT / "benchmarks" / "results" / "BENCH_fast.json"),
        help="committed fast-summation benchmark (default: benchmarks/results/BENCH_fast.json)",
    )
    parser.add_argument(
        "--fast-current", default=None,
        help="freshly collected fast benchmark (benchmarks/bench_fast.py output)",
    )
    parser.add_argument(
        "--fast-min-speedup", type=float, default=5.0,
        help="required fast-vs-dense speedup of the largest case (default 5)",
    )
    parser.add_argument(
        "--fast-max-auto-overhead", type=float, default=1.1,
        help="allowed auto-vs-dense wall ratio below the crossover "
        "(default 1.1 — a 10%% routing tax; use 1.5 on noisy shared runners)",
    )
    parser.add_argument(
        "--fast-rtol", type=float, default=0.9,
        help="allowed relative headline-speedup loss vs the committed baseline "
        "(default 0.9: an order-of-magnitude check, not a tight gate)",
    )
    parser.add_argument(
        "--autotune-current", default=None,
        help="freshly collected autotune benchmark "
        "(benchmarks/bench_autotune.py output)",
    )
    parser.add_argument(
        "--autotune-min-eval-ratio", type=float, default=10.0,
        help="required exhaustive/beam evaluation-count ratio on the wide "
        "space (default 10)",
    )
    parser.add_argument(
        "--autotune-max-quality", type=float, default=1.01,
        help="allowed beam/exhaustive modelled-seconds ratio on every "
        "paper-space case (default 1.01)",
    )
    parser.add_argument(
        "--fpcert-current", default=None,
        help="freshly collected accuracy-certificate validation "
        "(benchmarks/bench_fpcert.py output); gated with zero tolerance",
    )
    args = parser.parse_args(argv)

    if (args.current is None and args.hotpath_current is None
            and args.sweep_current is None and args.serve_current is None
            and args.fast_current is None and args.autotune_current is None
            and args.fpcert_current is None):
        parser.error(
            "nothing to gate: pass --current, --hotpath-current, "
            "--sweep-current, --serve-current, --fast-current, "
            "--autotune-current, and/or --fpcert-current"
        )

    failures = 0

    if args.current is not None:
        try:
            baseline = load_profile(args.baseline)
            current = load_profile(args.current)
        except (OSError, ValueError) as exc:
            print(f"cannot load profile: {exc}", file=sys.stderr)
            return 2
        drifts = compare_profiles(baseline, current, rtol=args.rtol)
        points = len(baseline.get("records", []))
        if drifts:
            failures += 1
            print(
                f"REGRESSION: {len(drifts)} drift(s) vs {args.baseline} "
                f"(rtol={args.rtol:g}):",
                file=sys.stderr,
            )
            for d in drifts:
                print(f"  {d}", file=sys.stderr)
        else:
            print(f"OK: {points} baseline points within rtol={args.rtol:g} of {args.current}")

    if args.hotpath_current is not None:
        try:
            drifts = check_hotpath(
                args.hotpath_baseline, args.hotpath_current, args.hotpath_rtol
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load hot-path benchmark: {exc}", file=sys.stderr)
            return 2
        if drifts:
            failures += 1
            print(
                f"REGRESSION: {len(drifts)} hot-path speedup(s) below floor "
                f"vs {args.hotpath_baseline} (rtol={args.hotpath_rtol:g}):",
                file=sys.stderr,
            )
            for d in drifts:
                print(f"  {d}", file=sys.stderr)
        else:
            print(
                f"OK: hot-path speedups within rtol={args.hotpath_rtol:g} "
                f"of {args.hotpath_baseline}"
            )

    if args.sweep_current is not None:
        try:
            issues = check_sweep(
                args.sweep_baseline, args.sweep_current,
                args.sweep_min_warm, args.sweep_min_process, args.sweep_rtol,
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load sweep benchmark: {exc}", file=sys.stderr)
            return 2
        if issues:
            failures += 1
            print(
                f"REGRESSION: {len(issues)} sweep-backend issue(s) "
                f"in {args.sweep_current}:",
                file=sys.stderr,
            )
            for issue in issues:
                print(f"  {issue}", file=sys.stderr)
        else:
            print(
                f"OK: sweep backend bit-identical, warm >= "
                f"{args.sweep_min_warm:g}x cold in {args.sweep_current}"
            )

    if args.serve_current is not None:
        try:
            issues = check_serve(
                args.serve_baseline, args.serve_current,
                args.serve_min_batched, args.serve_rtol,
                args.serve_max_telemetry_overhead,
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load serve benchmark: {exc}", file=sys.stderr)
            return 2
        if issues:
            failures += 1
            print(
                f"REGRESSION: {len(issues)} serving-layer issue(s) "
                f"in {args.serve_current}:",
                file=sys.stderr,
            )
            for issue in issues:
                print(f"  {issue}", file=sys.stderr)
        else:
            print(
                f"OK: serve answers bit-identical, batched >= "
                f"{args.serve_min_batched:g}x sequential in {args.serve_current}"
            )

    if args.fast_current is not None:
        try:
            issues = check_fast(
                args.fast_baseline, args.fast_current,
                args.fast_min_speedup, args.fast_max_auto_overhead,
                args.fast_rtol,
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load fast benchmark: {exc}", file=sys.stderr)
            return 2
        if issues:
            failures += 1
            print(
                f"REGRESSION: {len(issues)} fast-summation issue(s) "
                f"in {args.fast_current}:",
                file=sys.stderr,
            )
            for issue in issues:
                print(f"  {issue}", file=sys.stderr)
        else:
            print(
                f"OK: fast summation within eps, largest case >= "
                f"{args.fast_min_speedup:g}x dense in {args.fast_current}"
            )

    if args.autotune_current is not None:
        try:
            issues = check_autotune(
                args.autotune_current,
                args.autotune_min_eval_ratio,
                args.autotune_max_quality,
            )
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load autotune benchmark: {exc}", file=sys.stderr)
            return 2
        if issues:
            failures += 1
            print(
                f"REGRESSION: {len(issues)} autotuner issue(s) "
                f"in {args.autotune_current}:",
                file=sys.stderr,
            )
            for issue in issues:
                print(f"  {issue}", file=sys.stderr)
        else:
            print(
                f"OK: beam matches exhaustive on the paper space, "
                f">= {args.autotune_min_eval_ratio:g}x fewer evaluations on "
                f"the wide space, warm replay zero-eval "
                f"in {args.autotune_current}"
            )

    if args.fpcert_current is not None:
        try:
            issues = check_fpcert(args.fpcert_current)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load fpcert validation: {exc}", file=sys.stderr)
            return 2
        if issues:
            failures += 1
            print(
                f"REGRESSION: {len(issues)} accuracy-certificate issue(s) "
                f"in {args.fpcert_current}:",
                file=sys.stderr,
            )
            for issue in issues:
                print(f"  {issue}", file=sys.stderr)
        else:
            print(
                f"OK: every measured error within its certified bound, "
                f"both negative controls rejected in {args.fpcert_current}"
            )

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
