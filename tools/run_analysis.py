#!/usr/bin/env python
"""CI gate for the static-analysis subsystem (docs/ANALYSIS.md).

    python tools/run_analysis.py [--certificate analysis_certificate.json]
                                 [--baseline tools/analysis_baseline.json]
                                 [--k-values 32 64 128 256] [--update-baseline]

Runs all three analyzers against the committed tree and fails (exit 1) on
any violation that is not in the accepted baseline:

1. **invariant lint** over ``src/repro`` — new findings vs the committed
   baseline fail the gate (``--update-baseline`` rewrites the baseline
   instead, for use after a reviewed acceptance);
2. **bank certifier** — the optimized Fig.-5 mapping must certify
   bank-conflict-free (max replay 0 over every STS/LDS warp instruction);
   the machine-readable certificate is written to ``--certificate`` for
   CI artifact upload;
3. **race detector** — the fused CTA kernel, the unfused eval+sum tail,
   and the double-buffered panel loop at every paper K must certify
   race-free;
4. **accuracy certifier** — every paper schedule at every paper K must
   carry a ``repro-fpcert/v1`` certificate within the ulp budget;
5. **self-check** — the seeded mutants (missing barrier, permuted track
   mapping, event-loop-blocking dispatcher, leaky-span handler,
   narrowed accumulator, uncompensated two-pass commit) must *fail*
   their analyses; a gate that cannot see planted bugs proves nothing.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.analysis import (  # noqa: E402
    PAPER_K_VALUES,
    certify_mapping,
    certify_paper_accuracy,
    certify_paper_kernels,
    detect_races,
    lint_paths,
    load_baseline,
    narrowed_accumulator_certificate,
    new_findings,
    save_baseline,
    uncompensated_two_pass_certificate,
)
from repro.analysis.lint import lint_source  # noqa: E402
from repro.analysis.mutants import (  # noqa: E402
    BLOCKING_ASYNC_MUTANT_SOURCE,
    LEAKY_SPAN_MUTANT_SOURCE,
    NARROWED_ACCUMULATOR_MUTANT_SOURCE,
    permuted_store_assignment,
    stage_tile_missing_barrier_kernel,
)

DEFAULT_BASELINE = ROOT / "tools" / "analysis_baseline.json"


def run_lint(baseline_path: pathlib.Path, update: bool) -> int:
    findings = lint_paths([ROOT / "src" / "repro"], root=ROOT)
    if update:
        save_baseline(baseline_path, findings)
        print(f"lint: baseline rewritten with {len(findings)} finding(s)")
        return 0
    baseline = load_baseline(baseline_path)
    fresh = new_findings(findings, baseline)
    stale = baseline - {f.key for f in findings}
    print(f"lint: {len(findings)} finding(s), {len(fresh)} new, "
          f"{len(baseline)} accepted, {len(stale)} stale accepted key(s)")
    for f in fresh:
        print(f"  NEW {f.describe()}")
    for key in sorted(stale):
        print(f"  note: accepted key no longer fires (consider pruning): {key}")
    return 1 if fresh else 0


def run_banks(certificate: pathlib.Path | None) -> int:
    cert = certify_mapping("optimized", 8)
    print("banks:", cert.describe())
    if certificate is not None:
        certificate.write_text(
            json.dumps(cert.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"banks: certificate written to {certificate}")
    return 0 if cert.conflict_free else 1


def run_races(k_values: tuple[int, ...]) -> int:
    status = 0
    for report in certify_paper_kernels(k_values):
        print("race:", report.describe().replace("\n", "\n  "))
        if not report.ok:
            status = 1
    return status


def run_fpcert(
    k_values: tuple[int, ...], certificate: pathlib.Path | None
) -> int:
    certs = certify_paper_accuracy(k_values)
    bad = [c for c in certs if not c["certified"]]
    worst = max(certs, key=lambda c: c["ulps"])
    print(f"fpcert: {len(certs)} schedule x K certificate(s), "
          f"{len(bad)} rejected, worst {worst['ulps']:.3g} ulps "
          f"({worst['schedule']} K={worst['problem']['K']})")
    for c in bad:
        print(f"  REJECTED {c['schedule']} K={c['problem']['K']}: "
              f"{c['ulps']:.3g} ulps, violations {c['violations']}")
    if certificate is not None:
        certificate.write_text(
            json.dumps(certs, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"fpcert: certificates written to {certificate}")
    return 1 if bad else 0


def run_selfcheck() -> int:
    status = 0
    mutant_cert = certify_mapping("optimized", 8, store_fn=permuted_store_assignment)
    if mutant_cert.conflict_free:
        print("SELF-CHECK FAILED: permuted track mapping certified conflict-free")
        status = 1
    else:
        w = mutant_cert.worst()
        assert w is not None
        print(f"self-check: permuted-mapping mutant flagged "
              f"(max replay {mutant_cert.max_replay}, worst {w.op} warp {w.warp})")
    tileA = np.zeros((128, 8), dtype=np.float32)
    tileB = np.zeros((8, 128), dtype=np.float32)
    acc = np.zeros((128, 128), dtype=np.float32)
    report = detect_races(
        stage_tile_missing_barrier_kernel, (16, 16), tileA, tileB, acc, "optimized", 8
    )
    if report.ok:
        print("SELF-CHECK FAILED: missing-barrier mutant certified race-free")
        status = 1
    else:
        print(f"self-check: missing-barrier mutant flagged "
              f"({report.total_conflicting_words} conflicting word(s))")
    ra006 = lint_source(
        BLOCKING_ASYNC_MUTANT_SOURCE, "<ra006-mutant>", rules=["RA006"]
    )
    if len(ra006) < 2:
        print("SELF-CHECK FAILED: blocking-async mutant passed RA006 "
              f"({len(ra006)} finding(s), expected >= 2)")
        status = 1
    else:
        print(f"self-check: blocking-async mutant flagged "
              f"({len(ra006)} RA006 finding(s))")
    # RA007 binds on serve paths only, so label the mutant accordingly
    ra007 = lint_source(
        LEAKY_SPAN_MUTANT_SOURCE, "serve/mutant_leaky_span.py", rules=["RA007"]
    )
    if len(ra007) < 2:
        print("SELF-CHECK FAILED: leaky-span mutant passed RA007 "
              f"({len(ra007)} finding(s), expected >= 2)")
        status = 1
    else:
        print(f"self-check: leaky-span mutant flagged "
              f"({len(ra007)} RA007 finding(s))")
    ra008 = lint_source(
        NARROWED_ACCUMULATOR_MUTANT_SOURCE, "<ra008-mutant>", rules=["RA008"]
    )
    if len(ra008) < 2:
        print("SELF-CHECK FAILED: narrowed-accumulator mutant passed RA008 "
              f"({len(ra008)} finding(s), expected >= 2)")
        status = 1
    else:
        print(f"self-check: narrowed-accumulator mutant flagged "
              f"({len(ra008)} RA008 finding(s))")
    narrowed = narrowed_accumulator_certificate()
    if narrowed.certified:
        print("SELF-CHECK FAILED: narrowed-accumulator schedule certified")
        status = 1
    else:
        print(f"self-check: narrowed-accumulator schedule certified-reject "
              f"({narrowed.ulps:.3g} ulps, {list(narrowed.violations)})")
    uncomp = uncompensated_two_pass_certificate()
    if uncomp.certified:
        print("SELF-CHECK FAILED: uncompensated two-pass schedule certified")
        status = 1
    else:
        print(f"self-check: uncompensated two-pass schedule certified-reject "
              f"({list(uncomp.violations)})")
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--certificate", default=None, metavar="PATH",
                    help="write the bank certificate JSON here")
    ap.add_argument("--fpcert-certificate", default=None, metavar="PATH",
                    help="write the accuracy certificates JSON here")
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE), metavar="PATH",
                    help="accepted lint findings (default: tools/analysis_baseline.json)")
    ap.add_argument("--k-values", nargs="+", type=int, default=list(PAPER_K_VALUES),
                    metavar="K", help="K values for the race certification")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current findings and exit")
    ap.add_argument("--skip-races", action="store_true",
                    help="lint + banks only (the race sweep takes ~10 s)")
    args = ap.parse_args(argv)

    status = run_lint(pathlib.Path(args.baseline), args.update_baseline)
    if args.update_baseline:
        return status
    status |= run_banks(pathlib.Path(args.certificate) if args.certificate else None)
    if not args.skip_races:
        status |= run_races(tuple(args.k_values))
    status |= run_fpcert(
        tuple(args.k_values),
        pathlib.Path(args.fpcert_certificate) if args.fpcert_certificate else None,
    )
    status |= run_selfcheck()
    print("analysis gate:", "OK" if status == 0 else "FAILED")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
